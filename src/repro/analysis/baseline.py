"""Committed-baseline support for ``repro lint``.

A baseline is a JSON file mapping line-independent finding keys
(:attr:`repro.analysis.findings.Finding.baseline_key`) to occurrence
counts. Running with a baseline subtracts up to ``count`` matching
findings per key, so pre-existing debt does not fail CI while any *new*
finding — or an extra occurrence of a baselined one — still does.
Entries that no longer match anything are reported as *unused* so the
file can be shrunk as debt is paid down.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import AnalysisError
from repro.analysis.findings import Finding

_FORMAT = "repro-lint-baseline"
_VERSION = 1

#: Default location, relative to the project root.
DEFAULT_BASELINE = Path(".repro-lint-baseline.json")


def load_baseline(path: str | Path) -> dict[str, int]:
    """Parse a baseline file into ``{baseline_key: count}``."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"invalid JSON in baseline {path}: {exc}") from exc
    if document.get("format") != _FORMAT:
        raise AnalysisError(
            f"not a {_FORMAT} document: format={document.get('format')!r}"
        )
    if document.get("version") != _VERSION:
        raise AnalysisError(
            f"unsupported baseline version {document.get('version')!r}"
        )
    findings = document.get("findings", {})
    if not isinstance(findings, dict):
        raise AnalysisError("baseline 'findings' must be an object")
    out: dict[str, int] = {}
    for key, count in findings.items():
        if not isinstance(count, int) or count < 1:
            raise AnalysisError(
                f"baseline count for {key!r} must be a positive int"
            )
        out[key] = count
    return out


def save_baseline(findings: list[Finding], path: str | Path) -> None:
    """Write the baseline that waives exactly ``findings``."""
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.baseline_key] = counts.get(finding.baseline_key, 0) + 1
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    findings: list[Finding], baseline: dict[str, int]
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Split findings into (new, baselined) and list unused keys.

    Findings are consumed in source order; each baseline key waives at
    most its recorded count.
    """
    remaining = dict(baseline)
    new: list[Finding] = []
    waived: list[Finding] = []
    for finding in sorted(findings):
        key = finding.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            waived.append(finding)
        else:
            new.append(finding)
    unused = sorted(key for key, count in remaining.items() if count > 0)
    return new, waived, unused


__all__ = [
    "DEFAULT_BASELINE",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
]
