"""``repro lint`` — AST-based project-invariant analysis.

A stdlib-only static analyzer that checks the invariants the test
suite cannot see: lock discipline on ``# guarded-by:`` fields, the
:class:`~repro.errors.ReproError` taxonomy, fork-safety of objects
crossing process pools, registry/fleet reference resolvability, and
determinism of the snapshot/serialization paths. See the README
"Static analysis" section for the rule catalog and workflow.
"""

from repro.analysis.base import (
    ModuleInfo,
    Project,
    Rule,
    get_rules,
    register,
    rule_names,
)
from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.runner import LintReport, discover_project, run_lint

__all__ = [
    "DEFAULT_BASELINE",
    "Finding",
    "LintReport",
    "ModuleInfo",
    "Project",
    "Rule",
    "apply_baseline",
    "discover_project",
    "get_rules",
    "load_baseline",
    "register",
    "rule_names",
    "run_lint",
    "save_baseline",
]
