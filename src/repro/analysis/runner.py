"""Collect sources, run rules, apply suppressions and the baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import AnalysisError
from repro.analysis.base import ModuleInfo, Project, Rule, get_rules
from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.findings import Finding


@dataclass
class LintReport:
    """Outcome of one lint invocation."""

    root: str
    rules: list[str]
    #: Findings that fail the run (post-suppression, post-baseline).
    findings: list[Finding]
    #: Number of source files analyzed.
    files: int = 0
    #: Findings waived by the committed baseline.
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline keys that matched nothing (stale debt entries).
    unused_baseline: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        summary: dict[str, int] = {}
        for finding in self.findings:
            summary[finding.rule] = summary.get(finding.rule, 0) + 1
        return {
            "format": "repro-lint-report",
            "version": 1,
            "root": self.root,
            "rules": self.rules,
            "files": self.files,
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "unused_baseline": self.unused_baseline,
            "summary": {key: summary[key] for key in sorted(summary)},
        }


def discover_project(
    root: str | Path, paths: list[str] | None = None
) -> Project:
    """Parse every Python file under ``paths`` (default ``src/repro``)."""
    root = Path(root).resolve()
    if paths:
        targets = [root / p if not Path(p).is_absolute() else Path(p) for p in paths]
    else:
        targets = [root / "src" / "repro"]
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        elif target.is_file():
            files.append(target)
        else:
            raise AnalysisError(f"lint target {target} does not exist")
    project = Project(root=root)
    for path in files:
        try:
            relpath = path.resolve().relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        source = path.read_text(encoding="utf-8")
        project.modules.append(ModuleInfo(path, relpath, source))
    return project


def run_lint(
    root: str | Path,
    paths: list[str] | None = None,
    rules: list[str] | None = None,
    baseline: str | Path | None = None,
) -> LintReport:
    """Run the named rules over the project; returns a :class:`LintReport`.

    ``baseline`` is a path to a committed baseline file or ``None`` for
    no baseline. Suppression comments are always honored.
    """
    project = discover_project(root, paths)
    active: list[Rule] = get_rules(rules)

    raw: list[Finding] = []
    for rule in active:
        for module in project.modules:
            raw.extend(rule.check_module(module, project))
        raw.extend(rule.check_project(project))

    by_relpath = {module.relpath: module for module in project.modules}
    kept: list[Finding] = []
    for finding in raw:
        module = by_relpath.get(finding.path)
        if module is not None and module.suppressed(finding.rule, finding.line):
            continue
        kept.append(finding)
    kept.sort()

    baselined: list[Finding] = []
    unused: list[str] = []
    if baseline is not None:
        entries = load_baseline(baseline)
        kept, baselined, unused = apply_baseline(kept, entries)

    return LintReport(
        root=str(Path(root).resolve()),
        rules=[rule.name for rule in active],
        findings=kept,
        files=len(project.modules),
        baselined=baselined,
        unused_baseline=unused,
    )


__all__ = ["LintReport", "discover_project", "run_lint"]
