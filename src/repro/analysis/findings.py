"""Finding record shared by every lint rule.

A :class:`Finding` is one violation of one rule at one source location.
Findings are value objects: rules construct them, the runner filters them
(suppressions, baseline) and the CLI renders them. The *baseline key*
deliberately omits the line number so that unrelated edits shifting code
up or down do not invalidate a committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Stable identifier for baseline matching (attribute / class / ref
    #: name); falls back to the message when a rule has nothing better.
    symbol: str = field(default="", compare=False)

    @property
    def baseline_key(self) -> str:
        """Line-independent identity used by the committed baseline."""
        return f"{self.rule}::{self.path}::{self.symbol or self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "Finding":
        return cls(
            path=document["path"],
            line=int(document["line"]),
            col=int(document.get("col", 0)),
            rule=document["rule"],
            message=document["message"],
            symbol=document.get("symbol", ""),
        )

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


__all__ = ["Finding"]
