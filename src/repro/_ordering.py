"""Canonical pattern representation and the total order ``≺`` on items.

The paper's set-enumeration tree (Section 6.2) assumes a total order on the
item universe ``S`` so every subset of ``S`` has a unique ordered spelling.
We use dense integer item identifiers and natural integer order, so a pattern
is canonically represented as a strictly increasing tuple of item ids.

These helpers are shared by the mining algorithms (Apriori joins require the
prefix test) and by the TC-Tree (child generation combines ordered siblings).
"""

from __future__ import annotations

from collections.abc import Iterable

Pattern = tuple[int, ...]

EMPTY_PATTERN: Pattern = ()


def make_pattern(items: Iterable[int]) -> Pattern:
    """Return the canonical (sorted, deduplicated) tuple form of ``items``."""
    return tuple(sorted(set(items)))


def is_canonical(pattern: Pattern) -> bool:
    """Check that ``pattern`` is strictly increasing (canonical form)."""
    return all(a < b for a, b in zip(pattern, pattern[1:]))


def pattern_union(first: Pattern, second: Pattern) -> Pattern:
    """Union of two canonical patterns, in canonical form."""
    if not first:
        return second
    if not second:
        return first
    return tuple(sorted(set(first) | set(second)))


def is_subpattern(small: Pattern, big: Pattern) -> bool:
    """Return True when ``small ⊆ big`` (both canonical tuples)."""
    big_set = set(big)
    return all(item in big_set for item in small)


def subpatterns_one_shorter(pattern: Pattern) -> list[Pattern]:
    """All sub-patterns obtained by dropping exactly one item.

    Used by Apriori candidate verification: a length-k candidate survives only
    when every one of its k length-(k-1) sub-patterns is qualified.
    """
    return [pattern[:i] + pattern[i + 1:] for i in range(len(pattern))]


def joinable_prefix(first: Pattern, second: Pattern) -> bool:
    """True when two length-k patterns share their first k-1 items.

    This is the classic Apriori join condition: two canonical length-k
    patterns whose union has length k+1 *and* whose prefixes agree produce
    each candidate exactly once.
    """
    if len(first) != len(second) or not first:
        return False
    return first[:-1] == second[:-1] and first[-1] != second[-1]


def join_patterns(first: Pattern, second: Pattern) -> Pattern:
    """Join two prefix-compatible length-k patterns into a length-k+1 one."""
    if first[-1] < second[-1]:
        return first + (second[-1],)
    return second + (first[-1],)
