"""Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).

Level-wise search: length-k candidates are joins of prefix-compatible
length-(k-1) frequent itemsets, pruned when any length-(k-1) sub-pattern is
infrequent — the same schema TCFA applies to *qualified* patterns
(Algorithm 2 of the paper).
"""

from __future__ import annotations

from repro._ordering import (
    Pattern,
    join_patterns,
    joinable_prefix,
    subpatterns_one_shorter,
)
from repro.errors import MiningError
from repro.txdb.database import TransactionDatabase


def generate_candidates(frequent: list[Pattern]) -> list[Pattern]:
    """Apriori-gen: join + prune step over a level of frequent patterns.

    ``frequent`` must all have the same length k; the result is the set of
    length-(k+1) candidates whose every length-k sub-pattern is in
    ``frequent``.
    """
    frequent_set = set(frequent)
    ordered = sorted(frequent)
    candidates: list[Pattern] = []
    for i, first in enumerate(ordered):
        for second in ordered[i + 1:]:
            if not joinable_prefix(first, second):
                # Sorted order groups equal prefixes together, so the first
                # mismatch ends this inner loop.
                break
            candidate = join_patterns(first, second)
            if all(
                sub in frequent_set
                for sub in subpatterns_one_shorter(candidate)
            ):
                candidates.append(candidate)
    return candidates


def apriori_frequent_itemsets(
    database: TransactionDatabase,
    min_support: float,
    max_length: int | None = None,
) -> dict[Pattern, int]:
    """All itemsets with relative support >= ``min_support``.

    Returns a mapping pattern → absolute support count. ``min_support`` is
    inclusive (the conventional definition); the TCS pre-filter uses the
    strict variant in :mod:`repro.txdb.enumerate`.
    """
    if not 0.0 < min_support <= 1.0:
        raise MiningError(f"min_support must be in (0, 1], got {min_support}")
    total = database.num_transactions
    if total == 0:
        return {}
    min_count = min_support * total

    result: dict[Pattern, int] = {}
    level: list[Pattern] = []
    for item in sorted(database.items()):
        count = database.support_count((item,))
        if count >= min_count:
            pattern = (item,)
            result[pattern] = count
            level.append(pattern)

    k = 2
    while level and (max_length is None or k <= max_length):
        candidates = generate_candidates(level)
        level = []
        for candidate in candidates:
            count = len(database.support_set(candidate))
            if count >= min_count:
                result[candidate] = count
                level.append(candidate)
        k += 1
    return result
