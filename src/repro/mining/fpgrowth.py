"""FP-growth frequent-itemset mining (Han, Pei & Yin, SIGMOD 2000).

Pattern-growth without candidate generation: build an FP-tree, then for each
item recurse on its conditional pattern base. Single-path conditional trees
short-circuit into subset combinations.
"""

from __future__ import annotations

from itertools import combinations

from repro._ordering import Pattern, make_pattern
from repro.errors import MiningError
from repro.mining.fptree import FPTree
from repro.txdb.database import TransactionDatabase


def _build_tree(
    transactions: list[tuple[list[int], int]], min_count: float
) -> FPTree:
    counts: dict[int, int] = {}
    for items, count in transactions:
        for item in items:
            counts[item] = counts.get(item, 0) + count
    frequent = [i for i, c in counts.items() if c >= min_count]
    # Rank: most frequent first; ties broken by item id for determinism.
    frequent.sort(key=lambda i: (-counts[i], i))
    order = {item: rank for rank, item in enumerate(frequent)}
    tree = FPTree(order)
    for items, count in transactions:
        tree.insert(items, count)
    return tree


def _mine(
    tree: FPTree,
    suffix: Pattern,
    min_count: float,
    max_length: int | None,
    result: dict[Pattern, int],
) -> None:
    if max_length is not None and len(suffix) >= max_length:
        return
    if tree.is_single_path():
        path = tree.single_path_items()
        budget = len(path)
        if max_length is not None:
            budget = min(budget, max_length - len(suffix))
        for size in range(1, budget + 1):
            for combo in combinations(path, size):
                support = min(count for _, count in combo)
                if support >= min_count:
                    pattern = make_pattern(
                        suffix + tuple(item for item, _ in combo)
                    )
                    result[pattern] = max(result.get(pattern, 0), support)
        return
    for item in tree.items_bottom_up():
        support = sum(node.count for node in tree.header[item])
        if support < min_count:
            continue
        pattern = make_pattern(suffix + (item,))
        result[pattern] = support
        base = tree.conditional_pattern_base(item)
        conditional = _build_tree(base, min_count)
        if conditional.header:
            _mine(conditional, pattern, min_count, max_length, result)


def fpgrowth_frequent_itemsets(
    database: TransactionDatabase,
    min_support: float,
    max_length: int | None = None,
) -> dict[Pattern, int]:
    """All itemsets with relative support >= ``min_support``.

    Same contract as
    :func:`repro.mining.apriori.apriori_frequent_itemsets`; the two miners
    must produce identical results (enforced by the test suite).
    """
    if not 0.0 < min_support <= 1.0:
        raise MiningError(f"min_support must be in (0, 1], got {min_support}")
    total = database.num_transactions
    if total == 0:
        return {}
    min_count = min_support * total
    transactions = [(sorted(t), 1) for t in database.transactions()]
    tree = _build_tree(transactions, min_count)
    result: dict[Pattern, int] = {}
    _mine(tree, (), min_count, max_length, result)
    return result
