"""Frequent-itemset mining substrate.

The paper builds on classic frequent-pattern mining (Agrawal & Srikant 1994;
Han, Pei & Yin 2000): the TCS baseline enumerates per-vertex frequent
patterns, and TCFA borrows the Apriori candidate-generation schema. This
package provides reference implementations of both miners over a single
:class:`~repro.txdb.TransactionDatabase`; they also serve as oracles in the
test suite (the two miners must always agree).
"""

from repro.mining.apriori import apriori_frequent_itemsets
from repro.mining.fpgrowth import fpgrowth_frequent_itemsets
from repro.mining.fptree import FPTree

__all__ = [
    "apriori_frequent_itemsets",
    "fpgrowth_frequent_itemsets",
    "FPTree",
]
