"""Eclat frequent-itemset mining (Zaki, 1997).

The third classic miner, completing the substrate: depth-first search over
the prefix tree with *vertical* tid-set intersection — the representation
:class:`~repro.txdb.TransactionDatabase` already maintains, which is why
the TCS pre-filter (:mod:`repro.txdb.enumerate`) is Eclat-shaped. This
module is the full miner with the conventional inclusive ``min_support``
so it is drop-in comparable with Apriori and FP-growth; the three must
always agree (enforced by the test suite).
"""

from __future__ import annotations

from repro._ordering import Pattern
from repro.errors import MiningError
from repro.txdb.database import TransactionDatabase


def eclat_frequent_itemsets(
    database: TransactionDatabase,
    min_support: float,
    max_length: int | None = None,
) -> dict[Pattern, int]:
    """All itemsets with relative support >= ``min_support``.

    Same contract as the Apriori and FP-growth miners.
    """
    if not 0.0 < min_support <= 1.0:
        raise MiningError(f"min_support must be in (0, 1], got {min_support}")
    total = database.num_transactions
    if total == 0:
        return {}
    min_count = min_support * total

    items = [
        (item, database.support_set((item,)))
        for item in sorted(database.items())
    ]
    items = [(i, tids) for i, tids in items if len(tids) >= min_count]

    result: dict[Pattern, int] = {}

    def extend(prefix: Pattern, prefix_tids: set[int], start: int) -> None:
        for position in range(start, len(items)):
            item, tids = items[position]
            new_tids = prefix_tids & tids if prefix else tids
            if len(new_tids) < min_count:
                continue
            pattern = prefix + (item,)
            result[pattern] = len(new_tids)
            if max_length is None or len(pattern) < max_length:
                extend(pattern, new_tids, position + 1)

    extend((), set(), 0)
    return result
