"""FP-tree: the prefix-tree behind FP-growth (Han, Pei & Yin, SIGMOD 2000).

Transactions are inserted with items sorted by descending global frequency,
so shared prefixes collapse into shared tree paths. Header lists link all
nodes of each item for fast conditional-base extraction.
"""

from __future__ import annotations

from collections.abc import Iterable


class FPNode:
    """One node of an FP-tree: an item, a count, and tree links."""

    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: int | None, parent: "FPNode | None") -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, FPNode] = {}

    def path_to_root(self) -> list[int]:
        """Items on the path from this node's parent up to the root."""
        items: list[int] = []
        node = self.parent
        while node is not None and node.item is not None:
            items.append(node.item)
            node = node.parent
        return items


class FPTree:
    """An FP-tree over weighted transactions.

    ``item_order`` maps item → rank; lower rank = more frequent globally.
    Items absent from the order are skipped (they are globally infrequent).
    """

    def __init__(self, item_order: dict[int, int]) -> None:
        self.root = FPNode(None, None)
        self.item_order = item_order
        self.header: dict[int, list[FPNode]] = {}

    def insert(self, transaction: Iterable[int], count: int = 1) -> None:
        """Insert one transaction with multiplicity ``count``."""
        items = sorted(
            (i for i in transaction if i in self.item_order),
            key=lambda i: (self.item_order[i], i),
        )
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                self.header.setdefault(item, []).append(child)
            child.count += count
            node = child

    def conditional_pattern_base(self, item: int) -> list[tuple[list[int], int]]:
        """Prefix paths ending at ``item`` with their counts."""
        return [
            (node.path_to_root(), node.count)
            for node in self.header.get(item, [])
            if node.count > 0
        ]

    def items_bottom_up(self) -> list[int]:
        """Items ordered from globally least to most frequent.

        FP-growth recurses in this order so each conditional tree is built
        from already-complete suffixes.
        """
        return sorted(
            self.header,
            key=lambda i: (self.item_order[i], i),
            reverse=True,
        )

    def is_single_path(self) -> bool:
        """True when the tree is one chain (enables the fast combination path)."""
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return False
            node = next(iter(node.children.values()))
        return True

    def single_path_items(self) -> list[tuple[int, int]]:
        """(item, count) pairs along the single path from the root."""
        result: list[tuple[int, int]] = []
        node = self.root
        while node.children:
            node = next(iter(node.children.values()))
            result.append((node.item, node.count))  # type: ignore[arg-type]
        return result
