"""repro — theme communities in database networks.

A complete reproduction of *"Finding Theme Communities from Database
Networks: from Mining to Indexing and Query Answering"* (Chu et al., VLDB
2019 / arXiv:1709.08083): the database-network data model, the exact
mining algorithms (MPTD, TCS, TCFA, TCFI), the TC-Tree index with
decomposition-based query answering, every substrate they stand on
(graphs, k-truss/k-core, frequent-pattern mining, transaction databases),
the evaluation datasets, and the experiment harness.

Quickstart::

    from repro import ThemeCommunityFinder, toy_database_network

    network = toy_database_network()
    finder = ThemeCommunityFinder(network)
    for community in finder.find_communities(alpha=0.1):
        print(community.theme_labels(network), sorted(community.members))

Index once, query many times::

    from repro import ThemeCommunityWarehouse

    warehouse = ThemeCommunityWarehouse.build(network)
    answer = warehouse.query(alpha=0.2)
"""

from repro._ordering import Pattern, make_pattern
from repro.core.communities import ThemeCommunity, extract_theme_communities
from repro.core.finder import ThemeCommunityFinder
from repro.core.mptd import maximal_pattern_truss
from repro.core.results import MiningResult
from repro.core.tcfa import tcfa
from repro.core.tcfi import tcfi
from repro.core.tcs import tcs
from repro.core.truss import PatternTruss
from repro.datasets.checkin import generate_checkin_network
from repro.datasets.coauthor import generate_coauthor_network
from repro.datasets.synthetic import generate_synthetic_network
from repro.datasets.toy import toy_database_network
from repro.errors import (
    DatabaseError,
    GraphError,
    MiningError,
    NetworkFormatError,
    ReproError,
    TCIndexError,
)
from repro.graphs.graph import Graph
from repro.edgenet.finder import EdgeThemeCommunityFinder, edge_tcfi
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.index.decomposition import TrussDecomposition, decompose_network_pattern
from repro.index.query import QueryAnswer, query_by_alpha, query_by_pattern
from repro.index.tctree import TCTree, build_tc_tree
from repro.index.updates import update_vertex_database
from repro.index.warehouse import ThemeCommunityWarehouse
from repro.search.topk import top_k_communities
from repro.search.vertex import (
    communities_containing_vertex,
    strongest_themes_of_vertex,
)
from repro.network.builder import DatabaseNetworkBuilder
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.io import load_network, save_network
from repro.network.sampling import bfs_edge_sample
from repro.network.stats import network_statistics
from repro.txdb.database import TransactionDatabase

__version__ = "1.0.0"

__all__ = [
    # data model
    "Graph",
    "TransactionDatabase",
    "DatabaseNetwork",
    "DatabaseNetworkBuilder",
    "Pattern",
    "make_pattern",
    # mining
    "maximal_pattern_truss",
    "PatternTruss",
    "MiningResult",
    "tcs",
    "tcfa",
    "tcfi",
    "ThemeCommunity",
    "extract_theme_communities",
    "ThemeCommunityFinder",
    # indexing / querying
    "TrussDecomposition",
    "decompose_network_pattern",
    "TCTree",
    "build_tc_tree",
    "QueryAnswer",
    "query_by_alpha",
    "query_by_pattern",
    "ThemeCommunityWarehouse",
    "update_vertex_database",
    # search
    "communities_containing_vertex",
    "strongest_themes_of_vertex",
    "top_k_communities",
    # edge database networks (the paper's future-work extension)
    "EdgeDatabaseNetwork",
    "edge_tcfi",
    "EdgeThemeCommunityFinder",
    # datasets
    "toy_database_network",
    "generate_synthetic_network",
    "generate_checkin_network",
    "generate_coauthor_network",
    # io / utilities
    "save_network",
    "load_network",
    "bfs_edge_sample",
    "network_statistics",
    # errors
    "ReproError",
    "GraphError",
    "DatabaseError",
    "NetworkFormatError",
    "MiningError",
    "TCIndexError",
    "__version__",
]
