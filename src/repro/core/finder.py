"""High-level facade over the mining algorithms.

:class:`ThemeCommunityFinder` is the entry point most applications want: it
wraps a database network and exposes ``find`` (maximal pattern trusses) and
``find_communities`` (theme communities) with a method selector.

    >>> finder = ThemeCommunityFinder(network)
    >>> result = finder.find(alpha=0.2)               # TCFI, exact
    >>> communities = finder.find_communities(alpha=0.2)
"""

from __future__ import annotations

from repro.core.communities import ThemeCommunity, extract_theme_communities
from repro.core.results import MiningResult
from repro.core.tcfa import tcfa
from repro.core.tcfi import tcfi
from repro.core.tcs import tcs
from repro.errors import MiningError
from repro.network.dbnetwork import DatabaseNetwork

_METHODS = ("tcfi", "tcfa", "tcs")


class ThemeCommunityFinder:
    """Find theme communities in a database network.

    ``method`` selects the algorithm:

    - ``"tcfi"`` (default) — exact, intersection-pruned (Section 5.3);
    - ``"tcfa"`` — exact, Apriori-pruned only (Algorithm 3);
    - ``"tcs"`` — approximate baseline with frequency pre-filter ``epsilon``
      (Section 4.2).
    """

    def __init__(self, network: DatabaseNetwork) -> None:
        self.network = network

    def find(
        self,
        alpha: float,
        method: str = "tcfi",
        epsilon: float = 0.1,
        max_length: int | None = None,
        workers: int = 1,
    ) -> MiningResult:
        """All non-empty maximal pattern trusses w.r.t. ``alpha``."""
        if method not in _METHODS:
            raise MiningError(
                f"unknown method {method!r}; expected one of {_METHODS}"
            )
        if method == "tcfi":
            return tcfi(self.network, alpha, max_length, workers)
        if method == "tcfa":
            return tcfa(self.network, alpha, max_length, workers)
        return tcs(self.network, alpha, epsilon, max_length)

    def find_communities(
        self,
        alpha: float,
        method: str = "tcfi",
        epsilon: float = 0.1,
        max_length: int | None = None,
        min_size: int = 3,
        workers: int = 1,
    ) -> list[ThemeCommunity]:
        """All theme communities w.r.t. ``alpha``, largest-first.

        ``min_size`` filters trivial components; a truss edge implies a
        triangle, so 3 is the smallest possible community and the default
        keeps everything.
        """
        result = self.find(alpha, method, epsilon, max_length, workers)
        return [
            c
            for c in extract_theme_communities(result)
            if c.size >= min_size
        ]
