"""Independent verification of mining results.

Downstream users who modify the miners (new pruning rules, approximate
variants) need a way to check results against the definitions rather than
against another implementation. This module re-derives everything from
Definitions 3.3-3.5 directly:

- every truss is a pattern truss (all edge cohesions > α, recomputed from
  the vertex databases — not from any cached frequency map);
- every truss is maximal (no removed edge of its theme network can be
  added back);
- optionally, *completeness* against a brute-force enumeration (viable
  only for small item universes — it is exponential by Theorem 3.8).

All functions return lists of human-readable violation strings; empty
means verified.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.cohesion import edge_cohesion_table
from repro.core.mptd import COHESION_TOLERANCE, maximal_pattern_truss
from repro.core.results import MiningResult
from repro.core.truss import PatternTruss
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.theme import induce_theme_network


def verify_pattern_truss(
    network: DatabaseNetwork,
    truss: PatternTruss,
    alpha: float,
) -> list[str]:
    """Check one truss against Definitions 3.3/3.4. Returns violations."""
    violations: list[str] = []
    pattern = truss.pattern

    # Frequencies must match the databases exactly.
    for v in truss.graph:
        actual = network.frequency(v, pattern)
        if actual <= 0.0:
            violations.append(
                f"vertex {v} has zero frequency for {pattern} but is in "
                "the truss"
            )
        stored = truss.frequencies.get(v)
        if stored is not None and abs(stored - actual) > 1e-9:
            violations.append(
                f"vertex {v}: stored frequency {stored} != database "
                f"frequency {actual}"
            )

    # Every edge must exist in the network and exceed α in cohesion.
    frequencies = {
        v: network.frequency(v, pattern) for v in truss.graph
    }
    cohesion = edge_cohesion_table(truss.graph, frequencies)
    for edge, value in cohesion.items():
        if not network.graph.has_edge(*edge):
            violations.append(f"edge {edge} not in the database network")
        if value <= alpha + COHESION_TOLERANCE:
            violations.append(
                f"edge {edge} has cohesion {value} <= alpha {alpha}"
            )

    # Maximality: re-running MPTD on the full theme network must give back
    # exactly this edge set.
    graph, theme_frequencies = induce_theme_network(network, pattern)
    maximal, _ = maximal_pattern_truss(graph, theme_frequencies, alpha)
    ours = set(truss.graph.iter_edges())
    exact = set(maximal.iter_edges())
    if ours != exact:
        missing = exact - ours
        extra = ours - exact
        if missing:
            violations.append(
                f"not maximal: missing {sorted(missing)[:5]}"
                + ("..." if len(missing) > 5 else "")
            )
        if extra:
            violations.append(
                f"overfull: extra edges {sorted(extra)[:5]}"
                + ("..." if len(extra) > 5 else "")
            )
    return violations


def verify_mining_result(
    network: DatabaseNetwork,
    result: MiningResult,
    check_completeness: bool = False,
    max_pattern_length: int | None = None,
) -> list[str]:
    """Check every truss of ``result``; optionally check completeness.

    ``check_completeness=True`` enumerates *all* patterns up to
    ``max_pattern_length`` over the network's item universe and verifies
    that every qualified one appears in ``result`` — exponential in the
    universe, so only use on small networks.
    """
    violations: list[str] = []
    for pattern, truss in result.items():
        if pattern != truss.pattern:
            violations.append(
                f"key {pattern} maps to truss of pattern {truss.pattern}"
            )
        for violation in verify_pattern_truss(network, truss, result.alpha):
            violations.append(f"{pattern}: {violation}")

    if check_completeness:
        items = network.item_universe()
        limit = max_pattern_length or len(items)
        for length in range(1, limit + 1):
            for combo in combinations(items, length):
                graph, frequencies = induce_theme_network(network, combo)
                truss_graph, _ = maximal_pattern_truss(
                    graph, frequencies, result.alpha
                )
                if truss_graph.num_edges and combo not in result:
                    violations.append(
                        f"missing qualified pattern {combo} "
                        f"({truss_graph.num_edges} edges)"
                    )
    return violations
