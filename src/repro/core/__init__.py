"""Core theme-community mining algorithms (Sections 3-5 of the paper).

Contents:

- :mod:`repro.core.cohesion` — edge cohesion (Definition 3.1);
- :mod:`repro.core.mptd` — Maximal Pattern Truss Detector (Algorithm 1);
- :mod:`repro.core.truss` — the :class:`PatternTruss` result container;
- :mod:`repro.core.tcs` — the Theme Community Scanner baseline (Section 4.2);
- :mod:`repro.core.candidates` — Apriori candidate generation (Algorithm 2);
- :mod:`repro.core.tcfa` — Theme Community Finder Apriori (Algorithm 3);
- :mod:`repro.core.tcfi` — Theme Community Finder Intersection (Section 5.3);
- :mod:`repro.core.communities` — theme-community extraction (Def. 3.5);
- :mod:`repro.core.finder` — the high-level facade.
"""

from repro.core.cohesion import edge_cohesion, edge_cohesion_table
from repro.core.communities import ThemeCommunity, extract_theme_communities
from repro.core.finder import ThemeCommunityFinder
from repro.core.mptd import maximal_pattern_truss
from repro.core.results import MiningResult
from repro.core.tcfa import tcfa
from repro.core.tcfi import tcfi
from repro.core.tcs import tcs
from repro.core.truss import PatternTruss

__all__ = [
    "edge_cohesion",
    "edge_cohesion_table",
    "maximal_pattern_truss",
    "PatternTruss",
    "MiningResult",
    "tcs",
    "tcfa",
    "tcfi",
    "ThemeCommunity",
    "extract_theme_communities",
    "ThemeCommunityFinder",
]
