"""Theme Community Finder Apriori — TCFA (Algorithm 3).

Level-wise exact mining: start from the qualified single items, generate
length-k candidates from length-(k-1) qualified patterns (Algorithm 2), and
verify each candidate by inducing its theme network *from the whole
database network* and running MPTD. Pattern anti-monotonicity
(Proposition 5.2) guarantees no qualified pattern is missed.

The known weakness — candidates are verified against the full network, so
each verification pays a full theme-network induction — is what TCFI
removes (Section 5.3).
"""

from __future__ import annotations

from repro.core.candidates import generate_candidates
from repro.core.levels import single_item_trusses
from repro.core.mptd import maximal_pattern_truss
from repro.core.results import MiningResult
from repro.core.truss import PatternTruss
from repro.errors import MiningError
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.theme import induce_theme_network


def tcfa(
    network: DatabaseNetwork,
    alpha: float,
    max_length: int | None = None,
    workers: int = 1,
) -> MiningResult:
    """Run TCFA; returns the exact set of non-empty maximal pattern trusses.

    ``max_length`` optionally stops the level-wise loop early (all patterns
    up to that length are still exact). ``workers`` parallelizes the
    single-item layer.
    """
    if alpha < 0.0:
        raise MiningError(f"alpha must be >= 0, got {alpha}")
    result = MiningResult(alpha)
    level = single_item_trusses(network, alpha, workers=workers)
    for truss in level.values():
        result.add(truss)

    k = 2
    while level and (max_length is None or k <= max_length):
        next_level: dict = {}
        for candidate in generate_candidates(sorted(level)):
            graph, frequencies = induce_theme_network(
                network, candidate.pattern
            )
            if graph.num_edges == 0:
                continue
            truss_graph, _ = maximal_pattern_truss(graph, frequencies, alpha)
            truss = PatternTruss(
                candidate.pattern, truss_graph, frequencies, alpha
            )
            if not truss.is_empty():
                next_level[truss.pattern] = truss
                result.add(truss)
        level = next_level
        k += 1
    return result
