"""Shared level-1 computation for the level-wise finders.

TCFA and TCFI both start by running MPTD on the theme network of every
single item (Line 1 of Algorithm 3). The paper parallelizes this layer
(OpenMP, 4 threads) when building the TC-Tree; we expose an optional thread
pool with the same semantics.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro._ordering import Pattern
from repro.core.mptd import maximal_pattern_truss
from repro.core.truss import PatternTruss
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.theme import induce_theme_network


def single_item_truss(
    network: DatabaseNetwork, item: int, alpha: float
) -> PatternTruss:
    """MPTD on the theme network of one single-item pattern."""
    pattern: Pattern = (item,)
    graph, frequencies = induce_theme_network(network, pattern)
    truss_graph, _ = maximal_pattern_truss(graph, frequencies, alpha)
    return PatternTruss(pattern, truss_graph, frequencies, alpha)


def single_item_trusses(
    network: DatabaseNetwork,
    alpha: float,
    items: list[int] | None = None,
    workers: int = 1,
) -> dict[Pattern, PatternTruss]:
    """Non-empty single-item maximal pattern trusses.

    ``items`` defaults to the full item universe ``S``. With ``workers > 1``
    the per-item MPTD runs are dispatched to a thread pool — independent
    theme networks, as the paper notes, are embarrassingly parallel.
    """
    if items is None:
        items = network.item_universe()
    if workers > 1 and len(items) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            trusses = list(
                pool.map(
                    lambda item: single_item_truss(network, item, alpha),
                    items,
                )
            )
    else:
        trusses = [single_item_truss(network, item, alpha) for item in items]
    return {t.pattern: t for t in trusses if not t.is_empty()}
