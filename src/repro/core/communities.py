"""Theme-community extraction (Definition 3.5).

A theme community is a maximal connected subgraph of a maximal pattern
truss. This module turns mining results (pattern → truss maps) into
:class:`ThemeCommunity` records carrying the pattern, the member vertices,
and the member frequencies — the unit of reporting in the case study
(Section 7.4).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field

from repro._ordering import Pattern
from repro.core.results import MiningResult
from repro.core.truss import PatternTruss
from repro.network.dbnetwork import DatabaseNetwork


@dataclass(frozen=True)
class ThemeCommunity:
    """One theme community: a theme and a connected set of members."""

    pattern: Pattern
    members: frozenset[int]
    alpha: float
    frequencies: dict[int, float] = field(compare=False, default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.members)

    def theme_labels(self, network: DatabaseNetwork) -> tuple[Hashable, ...]:
        """Human-readable theme (the keyword set in Table 4)."""
        return network.pattern_labels(self.pattern)

    def member_labels(self, network: DatabaseNetwork) -> list[Hashable]:
        """Human-readable member names (the author names in Figure 6)."""
        return sorted(
            (network.vertex_label(v) for v in self.members), key=str
        )

    def overlap(self, other: "ThemeCommunity") -> int:
        """Shared members with another community (overlap analysis, §7.4)."""
        return len(self.members & other.members)


def communities_of_truss(truss: PatternTruss) -> list[ThemeCommunity]:
    """Split one maximal pattern truss into its theme communities."""
    return [
        ThemeCommunity(
            pattern=truss.pattern,
            members=frozenset(component),
            alpha=truss.alpha,
            frequencies={
                v: truss.frequencies.get(v, 0.0) for v in component
            },
        )
        for component in truss.communities()
    ]


def extract_theme_communities(
    result: MiningResult | Iterable[PatternTruss],
) -> list[ThemeCommunity]:
    """All theme communities of a mining result, largest-first."""
    trusses = (
        result.values() if isinstance(result, MiningResult) else result
    )
    communities: list[ThemeCommunity] = []
    for truss in trusses:
        communities.extend(communities_of_truss(truss))
    communities.sort(key=lambda c: (-c.size, c.pattern, sorted(c.members)))
    return communities
