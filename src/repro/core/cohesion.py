"""Edge cohesion (Definition 3.1).

For an edge ``(i, j)`` of a subgraph ``C_p`` of theme network ``G_p``::

    eco_ij(C_p) = Σ_{△ijk ⊆ C_p} min(f_i(p), f_j(p), f_k(p))

i.e. each triangle through the edge contributes the minimum pattern
frequency among its three vertices. With all frequencies equal to 1 this is
the triangle count, recovering Cohen's k-truss support.
"""

from __future__ import annotations

from repro.graphs.graph import Edge, Graph, Vertex, edge_key
from repro.graphs.triangles import common_neighbors

FrequencyMap = dict[Vertex, float]


def edge_cohesion(
    graph: Graph,
    frequencies: FrequencyMap,
    u: Vertex,
    v: Vertex,
) -> float:
    """Cohesion of one edge in ``graph`` under ``frequencies``."""
    f_u = frequencies.get(u, 0.0)
    f_v = frequencies.get(v, 0.0)
    base = f_u if f_u < f_v else f_v
    total = 0.0
    for w in common_neighbors(graph, u, v):
        f_w = frequencies.get(w, 0.0)
        total += base if base < f_w else f_w
    return total


def edge_cohesion_table(
    graph: Graph, frequencies: FrequencyMap
) -> dict[Edge, float]:
    """Cohesion of every edge (Phase 1 of Algorithm 1).

    Cost is ``O(Σ_v d(v)²)`` — each edge pays one common-neighbour
    intersection — matching the complexity stated in Section 4.1.
    """
    table: dict[Edge, float] = {}
    for u, v in graph.iter_edges():
        table[edge_key(u, v)] = edge_cohesion(graph, frequencies, u, v)
    return table
