"""Edge cohesion (Definition 3.1).

For an edge ``(i, j)`` of a subgraph ``C_p`` of theme network ``G_p``::

    eco_ij(C_p) = Σ_{△ijk ⊆ C_p} min(f_i(p), f_j(p), f_k(p))

i.e. each triangle through the edge contributes the minimum pattern
frequency among its three vertices. With all frequencies equal to 1 this is
the triangle count, recovering Cohen's k-truss support.

The full-table computation (Phase 1 of Algorithm 1) routes dense-int
graphs through the CSR engine, which accumulates every edge's cohesion in
a single pass of sorted-adjacency merges instead of one set intersection
per edge.
"""

from __future__ import annotations

from repro.graphs.csr import CSRGraph, GraphLike, as_csr
from repro.graphs.graph import Edge, Graph, Vertex, edge_key
from repro.graphs.support import CSR_MIN_EDGES, cohesion_values
from repro.graphs.triangles import common_neighbors

FrequencyMap = dict[Vertex, float]


def edge_cohesion(
    graph: Graph,
    frequencies: FrequencyMap,
    u: Vertex,
    v: Vertex,
) -> float:
    """Cohesion of one edge in ``graph`` under ``frequencies``."""
    f_u = frequencies.get(u, 0.0)
    f_v = frequencies.get(v, 0.0)
    base = f_u if f_u < f_v else f_v
    total = 0.0
    for w in common_neighbors(graph, u, v):
        f_w = frequencies.get(w, 0.0)
        total += base if base < f_w else f_w
    return total


def edge_cohesion_table(
    graph: GraphLike, frequencies: FrequencyMap
) -> dict[Edge, float]:
    """Cohesion of every edge (Phase 1 of Algorithm 1).

    Cost is ``O(Σ_v d(v)²)`` — each edge pays one common-neighbour
    intersection (CSR: one merge) — matching Section 4.1.
    """
    if (
        not isinstance(graph, CSRGraph)
        and graph.num_edges < CSR_MIN_EDGES
    ):
        # Tiny theme networks (the common per-candidate case): the
        # dict-of-sets path wins below the engine cutover.
        return _edge_cohesion_table_legacy(graph, frequencies)
    csr = as_csr(graph)
    if csr is not None:
        freq = [frequencies.get(label, 0.0) for label in csr.labels]
        _, totals = cohesion_values(csr, freq)
        return {csr.edge_label(e): t for e, t in enumerate(totals)}
    return _edge_cohesion_table_legacy(graph, frequencies)


def _edge_cohesion_table_legacy(
    graph: Graph, frequencies: FrequencyMap
) -> dict[Edge, float]:
    """Per-edge set-intersection fallback (also the parity-test oracle)."""
    table: dict[Edge, float] = {}
    for u, v in graph.iter_edges():
        table[edge_key(u, v)] = edge_cohesion(graph, frequencies, u, v)
    return table
