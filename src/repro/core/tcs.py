"""Theme Community Scanner — the TCS baseline (Section 4.2).

TCS first collects the candidate set ``P = {p | ∃ v_i, f_i(p) > ε}`` by
enumerating frequent patterns in every vertex database, then runs MPTD on
each candidate's theme network. The pre-filter trades accuracy for speed:
a low-frequency pattern can still form a dense, high-cohesion truss, and
such trusses are lost when ``ε`` is too large (the effect measured in
Figure 3).
"""

from __future__ import annotations

from repro._ordering import Pattern
from repro.core.mptd import maximal_pattern_truss
from repro.core.results import MiningResult
from repro.core.truss import PatternTruss
from repro.errors import MiningError
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.theme import induce_theme_network
from repro.txdb.enumerate import enumerate_frequent_patterns


def collect_candidate_patterns(
    network: DatabaseNetwork,
    epsilon: float,
    max_length: int | None = None,
) -> set[Pattern]:
    """The TCS candidate set: patterns exceeding ``ε`` somewhere.

    The union over vertices of each database's frequent patterns. With
    ``ε = 0`` this is every pattern occurring anywhere — the exponential
    blow-up that makes plain TCS "too slow to stop in reasonable time"
    (Section 7.1).
    """
    candidates: set[Pattern] = set()
    for database in network.databases.values():
        candidates.update(
            enumerate_frequent_patterns(database, epsilon, max_length)
        )
    return candidates


def tcs(
    network: DatabaseNetwork,
    alpha: float,
    epsilon: float = 0.1,
    max_length: int | None = None,
) -> MiningResult:
    """Run the TCS baseline.

    Parameters mirror the paper: ``alpha`` is the cohesion threshold,
    ``epsilon`` the frequency pre-filter (ε ∈ {0.1, 0.2, 0.3} in the
    evaluation). ``max_length`` optionally caps candidate pattern length.

    Returns the set of non-empty maximal pattern trusses found — possibly a
    strict subset of the exact answer when ``epsilon > 0``.
    """
    if alpha < 0.0:
        raise MiningError(f"alpha must be >= 0, got {alpha}")
    result = MiningResult(alpha)
    for pattern in sorted(collect_candidate_patterns(network, epsilon, max_length)):
        graph, frequencies = induce_theme_network(network, pattern)
        if graph.num_edges == 0:
            continue
        truss_graph, _ = maximal_pattern_truss(graph, frequencies, alpha)
        result.add(PatternTruss(pattern, truss_graph, frequencies, alpha))
    return result
