"""The #P-hardness reduction of Theorem 3.8, as executable code.

Appendix A.1 proves counting theme communities #P-hard by reduction from
Frequent Pattern Counting (FPC): given a transaction database ``d`` and a
threshold α ∈ [0, 1], build a 3-vertex triangle whose vertices all carry a
copy of ``d``. Every pattern then has the same frequency ``f(p)`` on all
three vertices, each edge sits in exactly one triangle, so every edge
cohesion equals ``f(p)`` — hence ``G_p`` forms a (single) theme community
iff ``f(p) > α``. Counting theme communities in the gadget therefore
answers FPC exactly.

Having the reduction as code serves two purposes: it documents the
construction precisely, and the test suite *executes* the proof — for
random databases, the number of theme communities found by the (exact)
miners on the gadget equals the number of frequent patterns counted
directly.
"""

from __future__ import annotations

from repro.errors import MiningError
from repro.graphs.graph import Graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase
from repro.txdb.enumerate import enumerate_frequent_patterns


def fpc_gadget(database: TransactionDatabase) -> DatabaseNetwork:
    """The Theorem 3.8 gadget: a triangle, each vertex a copy of ``d``.

    Construction is O(|d|), as the proof requires. All three vertices
    share the *same* database object — the reduction only needs equal
    frequencies, and sharing keeps the gadget cheap.
    """
    if not database:
        raise MiningError("the FPC reduction needs a non-empty database")
    graph = Graph([(0, 1), (1, 2), (0, 2)])
    databases = {0: database, 1: database, 2: database}
    return DatabaseNetwork(graph, databases)


def count_frequent_patterns(
    database: TransactionDatabase, alpha: float
) -> int:
    """Direct FPC: the number of patterns with ``f(p) > alpha``."""
    return sum(1 for _ in enumerate_frequent_patterns(database, alpha))


def count_theme_communities_via_gadget(
    database: TransactionDatabase, alpha: float
) -> int:
    """FPC answered by theme-community counting on the gadget.

    Runs the exact miner on the 3-vertex gadget and counts theme
    communities (each non-empty maximal pattern truss of the gadget is one
    connected triangle, i.e. exactly one community).
    """
    from repro.core.tcfi import tcfi

    network = fpc_gadget(database)
    result = tcfi(network, alpha)
    return sum(
        len(truss.communities()) for truss in result.values()
    )
