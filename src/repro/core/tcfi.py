"""Theme Community Finder Intersection — TCFI (Section 5.3).

TCFI is TCFA with one changed line (Line 6 of Algorithm 3): instead of
inducing the candidate's theme network from the whole database network, it
is induced from ``C*_{p}(α) ∩ C*_{q}(α)``, the intersection of the two
parent trusses. By the graph-intersection property (Proposition 5.3) the
candidate's maximal pattern truss lives inside that intersection, so:

- candidates whose parents' trusses do not intersect are pruned with *no*
  MPTD call at all;
- surviving candidates run MPTD on a tiny local subgraph rather than the
  whole network.

Because most maximal pattern trusses are small local subgraphs that do not
intersect (Section 7.2), this prunes the vast majority of candidates and is
the source of TCFI's two-orders-of-magnitude speedup.
"""

from __future__ import annotations

from repro.core.candidates import generate_candidates
from repro.core.levels import single_item_trusses
from repro.core.mptd import maximal_pattern_truss
from repro.core.results import MiningResult
from repro.core.truss import PatternTruss
from repro.errors import MiningError
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.theme import intersect_graphs, theme_network_within


def tcfi(
    network: DatabaseNetwork,
    alpha: float,
    max_length: int | None = None,
    workers: int = 1,
) -> MiningResult:
    """Run TCFI; exact — produces the same result as TCFA.

    See :func:`repro.core.tcfa.tcfa` for the shared parameters.
    """
    if alpha < 0.0:
        raise MiningError(f"alpha must be >= 0, got {alpha}")
    result = MiningResult(alpha)
    level = single_item_trusses(network, alpha, workers=workers)
    for truss in level.values():
        result.add(truss)

    k = 2
    while level and (max_length is None or k <= max_length):
        next_level: dict = {}
        for candidate in generate_candidates(sorted(level)):
            carrier = intersect_graphs(
                level[candidate.left_parent].graph,
                level[candidate.right_parent].graph,
            )
            if carrier.num_edges == 0:
                continue  # pruned with no MPTD call (Proposition 5.3)
            graph, frequencies = theme_network_within(
                network, candidate.pattern, carrier
            )
            if graph.num_edges == 0:
                continue
            truss_graph, _ = maximal_pattern_truss(graph, frequencies, alpha)
            truss = PatternTruss(
                candidate.pattern, truss_graph, frequencies, alpha
            )
            if not truss.is_empty():
                next_level[truss.pattern] = truss
                result.add(truss)
        level = next_level
        k += 1
    return result
