"""Maximal Pattern Truss Detector — MPTD (Algorithm 1).

Given a theme network (graph + frequency map) and a cohesion threshold
``α``, repeatedly remove *unqualified* edges — those with cohesion
``<= α`` — cascading the cohesion updates of the triangles each removal
destroys. What remains is the maximal pattern truss ``C*_p(α)``: the union
of all pattern trusses of ``G_p`` w.r.t. ``α`` (Definition 3.4).

Complexity ``O(Σ_v d(v)²)`` as analysed in Section 4.1: Phase 1 computes
all edge cohesions, Phase 2 charges each removal to the common
neighbourhood of the removed edge.

Dense-int theme networks (the library default) route through the CSR
engine: triangles are enumerated once into flat partner lists and the
peel cascade is pure array bookkeeping (:mod:`repro.graphs.support`). The
adjacency-set path remains for arbitrary hashables and as the parity-test
oracle.
"""

from __future__ import annotations

from collections import deque

from repro.errors import MiningError
from repro.graphs.csr import CSRGraph, GraphLike, as_csr
from repro.graphs.graph import Edge, Graph, Vertex, edge_key
from repro.graphs.support import (
    CSR_MIN_EDGES,
    cohesion_values,
    peel_cohesion,
)
from repro.graphs.triangles import common_neighbors
from repro.core.cohesion import (
    FrequencyMap,
    _edge_cohesion_table_legacy,
)

#: Tolerance for cohesion-vs-threshold comparisons. Cohesions are sums of
#: frequency minima maintained incrementally during peeling; without a
#: tolerance, float drift between the incremental value and a fresh
#: recomputation can flip an exact-boundary comparison (e.g. cohesion
#: 0.1 + 0.1 against α = 0.2) and break idempotence and the
#: decomposition/reconstruction equivalence. Real frequency data is never
#: within 1e-9 of a threshold by anything but intent, so edges within the
#: tolerance of α are treated as unqualified (the paper's "not larger
#: than α"). The CSR engine uses the same constant so both paths make the
#: same keep/peel decision at boundary thresholds.
COHESION_TOLERANCE = 1e-9


def peel_to_threshold(
    graph: Graph,
    frequencies: FrequencyMap,
    alpha: float,
    cohesion: dict[Edge, float],
    removed_sink: list[Edge] | None = None,
) -> None:
    """Phase 2 of Algorithm 1, in place (adjacency-set engine).

    Removes every edge whose cohesion is ``<= alpha`` from ``graph``,
    maintaining ``cohesion`` incrementally. Removed edges are appended to
    ``removed_sink`` (in removal order) when provided — the decomposition
    algorithm uses this to collect the per-threshold removed sets
    ``R_p(α_k)`` without re-running Phase 1.

    ``graph`` and ``cohesion`` are mutated; entries of removed edges are
    deleted from ``cohesion``.
    """
    bound = alpha + COHESION_TOLERANCE
    queue: deque[Edge] = deque(
        e for e, value in cohesion.items() if value <= bound
    )
    queued = set(queue)
    while queue:
        edge = queue.popleft()
        u, v = edge
        if not graph.has_edge(u, v):
            continue
        f_u = frequencies.get(u, 0.0)
        f_v = frequencies.get(v, 0.0)
        base = f_u if f_u < f_v else f_v
        for w in common_neighbors(graph, u, v):
            f_w = frequencies.get(w, 0.0)
            contribution = base if base < f_w else f_w
            for other in (edge_key(u, w), edge_key(v, w)):
                new_value = cohesion[other] - contribution
                cohesion[other] = new_value
                if new_value <= bound and other not in queued:
                    queued.add(other)
                    queue.append(other)
        graph.remove_edge(u, v)
        del cohesion[edge]
        if removed_sink is not None:
            removed_sink.append(edge)


def maximal_pattern_truss(
    graph: GraphLike,
    frequencies: FrequencyMap,
    alpha: float,
) -> tuple[Graph, dict[Edge, float]]:
    """Run MPTD on a theme network; the inputs are not mutated.

    Returns the maximal pattern truss as a graph (isolated vertices
    dropped) together with the final cohesion of each surviving edge. The
    cohesion table is what the decomposition (Section 6.1) continues
    peeling from.

    ``graph`` may be a legacy :class:`Graph` or a :class:`CSRGraph`
    carrier; dense-int inputs run on the CSR engine. ``alpha`` must be
    >= 0: Definition 3.3 requires strictly positive cohesion already at
    α = 0.
    """
    if alpha < 0.0:
        raise MiningError(f"alpha must be >= 0, got {alpha}")
    if (
        not isinstance(graph, CSRGraph)
        and graph.num_edges < CSR_MIN_EDGES
    ):
        # Per-candidate MPTD calls in the finders mostly see tiny theme
        # networks, where the engine's fixed costs lose to the
        # dict-of-sets loop. An explicit CSR input always takes the
        # engine.
        return _maximal_pattern_truss_legacy(graph, frequencies, alpha)
    csr = as_csr(graph)
    if csr is None:
        return _maximal_pattern_truss_legacy(graph, frequencies, alpha)
    freq = [frequencies.get(label, 0.0) for label in csr.labels]
    weights, cohesion = cohesion_values(csr, freq)
    alive = bytearray(b"\x01") * csr.num_edges
    peel_cohesion(csr, weights, cohesion, alpha, alive)
    result = Graph()
    surviving: dict[Edge, float] = {}
    for eid in range(len(alive)):
        if alive[eid]:
            u, v = csr.edge_label(eid)
            result.add_edge(u, v)
            surviving[(u, v)] = cohesion[eid]
    return result, surviving


def _maximal_pattern_truss_legacy(
    graph: Graph,
    frequencies: FrequencyMap,
    alpha: float,
) -> tuple[Graph, dict[Edge, float]]:
    """Adjacency-set MPTD (fallback and parity oracle)."""
    work = graph.copy()
    cohesion = _edge_cohesion_table_legacy(work, frequencies)
    peel_to_threshold(work, frequencies, alpha, cohesion)
    work.discard_isolated_vertices()
    return work, cohesion


def truss_vertices(graph: Graph) -> set[Vertex]:
    """Vertices of an edge-induced truss (every vertex has an edge)."""
    return {v for v in graph if graph.degree(v) > 0}
