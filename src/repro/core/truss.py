"""The :class:`PatternTruss` result container.

A maximal pattern truss ``C*_p(α)`` is an edge-induced subgraph of a theme
network together with the pattern, the threshold, and the per-vertex
frequencies (kept because decomposition and community reporting both need
them). Instances are immutable by convention: algorithms build a fresh
graph and hand it over.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro._ordering import Pattern
from repro.graphs.components import connected_components
from repro.graphs.csr import GraphLike, as_graph
from repro.graphs.graph import Edge, Vertex


class PatternTruss:
    """A (maximal) pattern truss: pattern + subgraph + frequencies + α."""

    __slots__ = ("pattern", "graph", "frequencies", "alpha")

    def __init__(
        self,
        pattern: Pattern,
        graph: GraphLike,
        frequencies: dict[Vertex, float],
        alpha: float,
    ) -> None:
        self.pattern = pattern
        # CSR carriers from the fast path normalize to the mutable
        # front-end so downstream consumers (components, export, search)
        # see one graph type.
        self.graph = as_graph(graph)
        # Keep only frequencies of surviving vertices: the truss is
        # self-contained for decomposition and reporting.
        self.frequencies = {
            v: frequencies[v] for v in graph if v in frequencies
        }
        self.alpha = alpha

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def is_empty(self) -> bool:
        return self.graph.num_edges == 0

    def vertices(self) -> set[Vertex]:
        return set(self.graph.vertices())

    def edges(self) -> set[Edge]:
        return set(self.graph.iter_edges())

    def communities(self) -> list[set[Vertex]]:
        """Theme communities: maximal connected subgraphs (Definition 3.5)."""
        return connected_components(self.graph)

    def iter_communities(self) -> Iterator[set[Vertex]]:
        yield from self.communities()

    def contains_subgraph(self, other: "PatternTruss") -> bool:
        """True when ``other``'s edge set is a subset of ours.

        This is the containment of Theorem 5.1 (graph anti-monotonicity):
        longer patterns have smaller trusses.
        """
        return all(self.graph.has_edge(u, v) for u, v in other.graph.iter_edges())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternTruss):
            return NotImplemented
        return (
            self.pattern == other.pattern
            and self.graph == other.graph
        )

    def __repr__(self) -> str:
        return (
            f"PatternTruss(pattern={self.pattern}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, alpha={self.alpha})"
        )
