"""Mining result container and the paper's evaluation metrics.

The evaluation (Section 7) measures, per run: Time Cost, NP (#patterns =
#maximal pattern trusses), NV (total vertex memberships over all trusses),
and NE (total edge memberships). A vertex/edge in k trusses counts k times.
:class:`MiningResult` stores the pattern → truss map and computes those
aggregates.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro._ordering import Pattern
from repro.core.truss import PatternTruss


class MiningResult(Mapping[Pattern, PatternTruss]):
    """The set of non-empty maximal pattern trusses found by a mining run."""

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self._trusses: dict[Pattern, PatternTruss] = {}

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, pattern: Pattern) -> PatternTruss:
        return self._trusses[pattern]

    def __iter__(self) -> Iterator[Pattern]:
        return iter(self._trusses)

    def __len__(self) -> int:
        return len(self._trusses)

    # ------------------------------------------------------------------
    def add(self, truss: PatternTruss) -> None:
        """Record a non-empty truss; empty trusses are silently skipped."""
        if truss.is_empty():
            return
        self._trusses[truss.pattern] = truss

    def patterns(self) -> list[Pattern]:
        return sorted(self._trusses)

    def patterns_of_length(self, k: int) -> list[Pattern]:
        return sorted(p for p in self._trusses if len(p) == k)

    def max_pattern_length(self) -> int:
        return max((len(p) for p in self._trusses), default=0)

    # ------------------------------------------------------------------
    # paper metrics
    # ------------------------------------------------------------------
    @property
    def num_patterns(self) -> int:
        """NP: number of maximal pattern trusses (= number of patterns)."""
        return len(self._trusses)

    @property
    def num_vertices(self) -> int:
        """NV: vertex memberships summed over all trusses."""
        return sum(t.num_vertices for t in self._trusses.values())

    @property
    def num_edges(self) -> int:
        """NE: edge memberships summed over all trusses."""
        return sum(t.num_edges for t in self._trusses.values())

    def metrics(self) -> dict[str, float]:
        np_ = self.num_patterns
        return {
            "NP": np_,
            "NV": self.num_vertices,
            "NE": self.num_edges,
            "NV/NP": self.num_vertices / np_ if np_ else 0.0,
            "NE/NP": self.num_edges / np_ if np_ else 0.0,
        }

    # ------------------------------------------------------------------
    def same_trusses_as(self, other: "MiningResult") -> bool:
        """Exact-result comparison (TCFA and TCFI must agree; TCS ⊆)."""
        if set(self._trusses) != set(other._trusses):
            return False
        return all(
            self._trusses[p].edges() == other._trusses[p].edges()
            for p in self._trusses
        )

    def is_subset_of(self, other: "MiningResult") -> bool:
        """True when every truss here appears identically in ``other``."""
        return all(
            p in other._trusses
            and self._trusses[p].edges() == other._trusses[p].edges()
            for p in self._trusses
        )

    def __repr__(self) -> str:
        return (
            f"MiningResult(alpha={self.alpha}, NP={self.num_patterns}, "
            f"NV={self.num_vertices}, NE={self.num_edges})"
        )
