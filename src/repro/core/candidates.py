"""Apriori candidate generation over qualified patterns (Algorithm 2).

A pattern is *qualified* when its maximal pattern truss is non-empty. By
pattern anti-monotonicity (Proposition 5.2) a length-k pattern can only be
qualified if all of its length-(k-1) sub-patterns are, so the level-wise
join/prune of Apriori applies verbatim with "frequent" replaced by
"qualified".

Unlike the classic miner we also report, per candidate, the *parent pair*
whose union produced it: TCFI needs the pair to build the intersection
carrier ``C*_{p}(α) ∩ C*_{q}(α)`` (Proposition 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._ordering import (
    Pattern,
    join_patterns,
    joinable_prefix,
    subpatterns_one_shorter,
)


@dataclass(frozen=True)
class Candidate:
    """A length-k candidate with the two length-(k-1) parents that made it."""

    pattern: Pattern
    left_parent: Pattern
    right_parent: Pattern


def generate_candidates(qualified: list[Pattern]) -> list[Candidate]:
    """Length-(k+1) candidates from length-k qualified patterns.

    Join step: prefix-compatible pairs (each candidate generated once).
    Prune step: discard candidates with any unqualified length-k
    sub-pattern. This is Algorithm 2 of the paper, restricted to prefix
    joins so every candidate carries a canonical parent pair.
    """
    qualified_set = set(qualified)
    ordered = sorted(qualified)
    candidates: list[Candidate] = []
    for i, first in enumerate(ordered):
        for second in ordered[i + 1:]:
            if not joinable_prefix(first, second):
                # Sorted order clusters shared prefixes; stop at first
                # mismatch.
                break
            pattern = join_patterns(first, second)
            if all(
                sub in qualified_set
                for sub in subpatterns_one_shorter(pattern)
            ):
                candidates.append(Candidate(pattern, first, second))
    return candidates
