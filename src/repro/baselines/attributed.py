"""Vertex-attributed community detection (CoPaM / ABACUS family).

The methods reviewed in Section 2.2 attach a single *set* of items to each
vertex and look for cohesive subgraphs whose vertices share items. To run
them on a database network one must flatten every transaction database to
the set of items it mentions — exactly the transformation Section 1 warns
about: it "wastes the valuable information of item co-occurrence and
pattern frequency".

``attributed_communities`` implements the family's common core:

1. flatten each vertex database to its attribute set;
2. enumerate attribute sets shared by enough vertices (frequent patterns
   over the vertex-attribute relation, mined level-wise);
3. for each shared set, induce the subgraph of vertices containing it and
   keep the k-truss communities inside.

The result is deliberately comparable to theme communities: same output
shape (pattern + vertex set), no frequency information. The benchmark
``bench_baseline_attributed`` quantifies the difference: the flattened
baseline reports communities whose "shared" pattern is rare in the actual
transactions (a single stray transaction is enough to count), which theme
community mining correctly rejects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._ordering import Pattern
from repro.core.candidates import generate_candidates
from repro.errors import MiningError
from repro.graphs.components import connected_components
from repro.graphs.ktruss import k_truss
from repro.network.dbnetwork import DatabaseNetwork


def flatten_to_attributes(network: DatabaseNetwork) -> dict[int, frozenset[int]]:
    """Collapse every vertex database to its flat item set.

    This is the lossy step: a user with one stray check-in at a place gets
    the same attribute as a user who goes daily.
    """
    return {
        v: frozenset(db.items()) for v, db in network.databases.items()
    }


@dataclass(frozen=True)
class AttributedCommunity:
    """One baseline community: a shared attribute set + a cohesive group."""

    pattern: Pattern
    members: frozenset[int]

    @property
    def size(self) -> int:
        return len(self.members)


def attributed_communities(
    network: DatabaseNetwork,
    k: int = 3,
    min_vertices: int = 3,
    max_length: int | None = None,
) -> list[AttributedCommunity]:
    """Communities of vertices sharing attribute sets (flattened model).

    ``k`` is the truss order of the cohesion check; ``min_vertices`` the
    minimum number of vertices that must carry an attribute set for it to
    be considered (the support threshold of the frequent-pattern step).
    """
    if k < 2:
        raise MiningError(f"k must be >= 2, got {k}")
    if min_vertices < 1:
        raise MiningError(f"min_vertices must be >= 1, got {min_vertices}")
    attributes = flatten_to_attributes(network)

    # Level 1: attributes carried by enough vertices.
    carriers: dict[Pattern, set[int]] = {}
    for vertex, items in attributes.items():
        for item in items:
            carriers.setdefault((item,), set()).add(vertex)
    level = {
        pattern: vertices
        for pattern, vertices in carriers.items()
        if len(vertices) >= min_vertices
    }

    communities: list[AttributedCommunity] = []

    def harvest(pattern: Pattern, vertices: set[int]) -> None:
        subgraph = network.graph.subgraph(vertices)
        truss = k_truss(subgraph, k)
        for component in connected_components(truss):
            if len(component) >= min_vertices:
                communities.append(
                    AttributedCommunity(pattern, frozenset(component))
                )

    for pattern, vertices in level.items():
        harvest(pattern, vertices)

    depth = 2
    while level and (max_length is None or depth <= max_length):
        next_level: dict[Pattern, set[int]] = {}
        for candidate in generate_candidates(sorted(level)):
            vertices = (
                level[candidate.left_parent] & level[candidate.right_parent]
            )
            if len(vertices) >= min_vertices:
                next_level[candidate.pattern] = vertices
                harvest(candidate.pattern, vertices)
        level = next_level
        depth += 1

    communities.sort(key=lambda c: (-c.size, c.pattern, sorted(c.members)))
    return communities


def false_theme_rate(
    network: DatabaseNetwork,
    communities: list[AttributedCommunity],
    frequency_threshold: float = 0.1,
) -> float:
    """Fraction of baseline communities whose pattern is actually rare.

    A baseline community is a *false theme* when the median member
    frequency of its pattern is below ``frequency_threshold`` — members
    technically mention the items but do not frequently co-use them. This
    is the paper's Challenge-1 information loss, quantified.
    """
    if not communities:
        return 0.0
    false = 0
    for community in communities:
        frequencies = sorted(
            network.frequency(v, community.pattern)
            for v in community.members
        )
        median = frequencies[len(frequencies) // 2]
        if median < frequency_threshold:
            false += 1
    return false / len(communities)
