"""Baselines from the related work (Section 2), for comparison.

- :mod:`repro.baselines.attributed` — a vertex-attributed community
  detector in the CoPaM/ABACUS family: it collapses each vertex database
  to a flat attribute set and mines cohesive subgraphs sharing attribute
  sets. It exists to make the paper's first challenge *measurable*:
  flattening "wastes the valuable information of item co-occurrence and
  pattern frequency" (Section 1), so this baseline over-reports
  communities that theme-community mining correctly rejects.
- :mod:`repro.baselines` also re-exports the classic k-truss / k-core
  detectors from :mod:`repro.graphs` (the structure-only baselines).
"""

from repro.baselines.attributed import (
    AttributedCommunity,
    attributed_communities,
    flatten_to_attributes,
)
from repro.graphs.kcore import k_core
from repro.graphs.ktruss import k_truss

__all__ = [
    "flatten_to_attributes",
    "attributed_communities",
    "AttributedCommunity",
    "k_truss",
    "k_core",
]
