"""The edge database network container.

Mirrors :class:`~repro.network.dbnetwork.DatabaseNetwork` with the
transaction database attached to each edge instead of each vertex.
Edges are keyed canonically (sorted endpoint pair).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro._ordering import Pattern, make_pattern
from repro.errors import DatabaseError, GraphError
from repro.graphs.csr import CSRGraph, as_csr
from repro.graphs.graph import Edge, Graph, edge_key
from repro.txdb.database import TransactionDatabase


class EdgeDatabaseNetwork:
    """An undirected graph whose edges carry transaction databases."""

    def __init__(
        self,
        graph: Graph | None = None,
        databases: dict[Edge, TransactionDatabase] | None = None,
        vertex_labels: dict[int, Hashable] | None = None,
        item_labels: dict[int, Hashable] | None = None,
    ) -> None:
        self.graph = graph if graph is not None else Graph()
        self.databases: dict[Edge, TransactionDatabase] = {}
        self.vertex_labels = vertex_labels or {}
        self.item_labels = item_labels or {}
        self._csr_cache: tuple[tuple[int, int], CSRGraph | None] | None = None
        for edge, database in (databases or {}).items():
            key = edge_key(*edge)
            if not self.graph.has_edge(*key):
                raise GraphError(
                    f"database attached to unknown edge {edge!r}"
                )
            self.databases[key] = database

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(
        self,
        u: int,
        v: int,
        database: TransactionDatabase | None = None,
    ) -> None:
        self.graph.add_edge(u, v)
        if database is not None:
            self.databases[edge_key(u, v)] = database

    def add_transaction(self, u: int, v: int, items: Iterable[int]) -> None:
        """Append one transaction to an edge's database, creating both the
        edge and its database on first use."""
        self.graph.add_edge(u, v)
        key = edge_key(u, v)
        database = self.databases.get(key)
        if database is None:
            database = TransactionDatabase()
            self.databases[key] = database
        database.add_transaction(items)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def csr_graph(self) -> CSRGraph | None:
        """Cached CSR view of the topology (None for non-int vertices).

        Same contract as :meth:`DatabaseNetwork.csr_graph`: the cache is
        keyed on ``(num_vertices, num_edges)`` and the construction API
        is grow-only, so any topology mutation invalidates it.
        """
        key = (self.graph.num_vertices, self.graph.num_edges)
        cached = self._csr_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        csr = as_csr(self.graph)
        self._csr_cache = (key, csr)
        return csr

    def edges_containing_item(self, item: int) -> list[Edge]:
        """Edges whose database mentions ``item`` at least once.

        The edge-model analogue of
        :meth:`DatabaseNetwork.vertices_containing_item`: the theme
        network of ``{item}`` is exactly this edge set (minus the edges
        whose frequency rounds to zero), so its size drives the parallel
        build's cost balancing and the triangle-warming predicate.
        """
        return [
            edge
            for edge, database in self.databases.items()
            if database.contains_item(item)
        ]

    def database(self, u: int, v: int) -> TransactionDatabase:
        try:
            return self.databases[edge_key(u, v)]
        except KeyError as exc:
            raise DatabaseError(
                f"edge ({u!r}, {v!r}) has no transaction database"
            ) from exc

    def frequency(self, u: int, v: int, pattern: Iterable[int]) -> float:
        """``f_e(p)`` — 0.0 when the edge has no database."""
        database = self.databases.get(edge_key(u, v))
        if database is None:
            return 0.0
        return database.frequency(pattern)

    def item_universe(self) -> list[int]:
        """All items appearing in any edge database (the universe S)."""
        universe: set[int] = set()
        for database in self.databases.values():
            universe |= database.items()
        return sorted(universe)

    def pattern_labels(self, pattern: Pattern) -> tuple[Hashable, ...]:
        return tuple(
            self.item_labels.get(i, i) for i in make_pattern(pattern)
        )

    def __repr__(self) -> str:
        return (
            f"EdgeDatabaseNetwork(|V|={self.num_vertices}, "
            f"|E|={self.num_edges}, databases={len(self.databases)})"
        )
