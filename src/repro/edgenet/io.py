"""Serialization of edge database networks.

JSON schema (version 1)::

    {
      "format": "repro-edgenetwork",
      "version": 1,
      "vertices": [0, 1, ...],
      "edges": [[0, 1], ...],
      "databases": {"0-1": [[item, ...], ...], ...},
      "vertex_labels": {...}, "item_labels": {...}
    }

Edge keys are serialized as ``"u-v"`` strings with ``u < v``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import NetworkFormatError
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.graphs.graph import Graph
from repro.txdb.database import TransactionDatabase

_FORMAT = "repro-edgenetwork"
_VERSION = 1


def edge_network_to_dict(network: EdgeDatabaseNetwork) -> dict:
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "vertices": sorted(network.graph.vertices()),
        "edges": sorted(network.graph.edges()),
        "databases": {
            f"{u}-{v}": [sorted(t) for t in db.transactions()]
            for (u, v), db in sorted(network.databases.items())
        },
        "vertex_labels": {
            str(v): label for v, label in sorted(network.vertex_labels.items())
        },
        "item_labels": {
            str(i): label for i, label in sorted(network.item_labels.items())
        },
    }


def edge_network_from_dict(document: dict) -> EdgeDatabaseNetwork:
    if document.get("format") != _FORMAT:
        raise NetworkFormatError(
            f"not a {_FORMAT} document: format={document.get('format')!r}"
        )
    if document.get("version") != _VERSION:
        raise NetworkFormatError(
            f"unsupported version {document.get('version')!r}"
        )
    graph = Graph()
    for v in document.get("vertices", []):
        graph.add_vertex(int(v))
    for u, v in document.get("edges", []):
        graph.add_edge(int(u), int(v))
    databases = {}
    for key, transactions in document.get("databases", {}).items():
        u_text, _, v_text = key.partition("-")
        try:
            edge = (int(u_text), int(v_text))
        except ValueError as exc:
            raise NetworkFormatError(f"bad edge key {key!r}") from exc
        databases[edge] = TransactionDatabase(
            [int(i) for i in t] for t in transactions
        )
    vertex_labels = {
        int(v): label
        for v, label in document.get("vertex_labels", {}).items()
    }
    item_labels = {
        int(i): label
        for i, label in document.get("item_labels", {}).items()
    }
    return EdgeDatabaseNetwork(graph, databases, vertex_labels, item_labels)


def save_edge_network(
    network: EdgeDatabaseNetwork, path: str | Path
) -> None:
    with Path(path).open("w", encoding="utf-8") as handle:
        json.dump(edge_network_to_dict(network), handle)


def load_edge_network(path: str | Path) -> EdgeDatabaseNetwork:
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise NetworkFormatError(f"invalid JSON in {path}: {exc}") from exc
    return edge_network_from_dict(document)
