"""Edge database networks — the paper's stated future work (Section 8).

    "As future works, we will extend TCFI and TC-Tree to find theme
    communities from edge database network, where each edge is associated
    with a transaction database that describes complex relationships
    between vertices."

This package provides that extension. In an edge database network the
transaction database sits on each *edge* (e.g. the messages exchanged
between two users, the papers two authors co-wrote), so the pattern
frequency ``f_e(p)`` is per-edge. Definitions carry over naturally:

- the *edge theme network* ``G_p`` keeps the edges with ``f_e(p) > 0``;
- the *edge cohesion* of an edge in a subgraph sums, over the triangles
  containing it, the minimum frequency among the triangle's three *edges*;
- maximal pattern trusses, decomposition, and the level-wise TCFI-style
  finder then work exactly as in the vertex model.

With all edge frequencies equal to 1 the model again degenerates to
Cohen's k-truss, mirroring Section 3.2 — a property the test suite checks.
"""

from repro.edgenet.cohesion import (
    edge_theme_cohesion,
    edge_theme_cohesion_table,
)
from repro.edgenet.decomposition import (
    EdgeTrussDecomposition,
    decompose_edge_network_pattern,
)
from repro.edgenet.finder import (
    EdgeThemeCommunityFinder,
    edge_tcfi,
    maximal_edge_pattern_truss,
)
from repro.edgenet.index import (
    EdgeQueryAnswer,
    EdgeTCNode,
    EdgeTCTree,
    build_edge_tc_tree,
)
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.edgenet.theme import induce_edge_theme_network

__all__ = [
    "EdgeDatabaseNetwork",
    "induce_edge_theme_network",
    "edge_theme_cohesion",
    "edge_theme_cohesion_table",
    "maximal_edge_pattern_truss",
    "edge_tcfi",
    "EdgeThemeCommunityFinder",
    "EdgeTrussDecomposition",
    "decompose_edge_network_pattern",
    "EdgeQueryAnswer",
    "EdgeTCNode",
    "EdgeTCTree",
    "build_edge_tc_tree",
]
