"""TC-Tree indexing and query answering for edge database networks.

The set-enumeration construction of Algorithm 4 and the pruned BFS of
Algorithm 5 transfer unchanged: nodes store
:class:`~repro.edgenet.decomposition.EdgeTrussDecomposition`, children are
computed inside parent-truss intersections, and empty decompositions prune
whole subtrees (the anti-monotonicity arguments hold for per-edge
frequencies).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro._ordering import EMPTY_PATTERN, Pattern, make_pattern
from repro.edgenet.decomposition import (
    EdgeTrussDecomposition,
    decompose_edge_network_pattern,
)
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.errors import TCIndexError
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.network.theme import intersect_graphs


class EdgeTCNode:
    """One node of an edge TC-Tree."""

    __slots__ = ("item", "pattern", "decomposition", "children")

    def __init__(
        self,
        item: int | None,
        pattern: Pattern,
        decomposition: EdgeTrussDecomposition | None,
    ) -> None:
        self.item = item
        self.pattern = pattern
        self.decomposition = decomposition
        self.children: list[EdgeTCNode] = []

    def iter_subtree(self) -> Iterator["EdgeTCNode"]:
        yield self
        for child in self.children:
            yield from child.iter_subtree()


class EdgeTCTree:
    """A built edge TC-Tree."""

    def __init__(self, root: EdgeTCNode) -> None:
        self.root = root

    @property
    def num_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def iter_nodes(self) -> Iterator[EdgeTCNode]:
        for child in self.root.children:
            yield from child.iter_subtree()

    def patterns(self) -> list[Pattern]:
        return sorted(node.pattern for node in self.iter_nodes())

    def query(
        self,
        pattern: Iterable[int] | None = None,
        alpha: float = 0.0,
    ) -> list[tuple[Pattern, Graph]]:
        """Algorithm 5 on the edge tree: (pattern, truss graph) pairs."""
        if alpha < 0.0:
            raise TCIndexError(f"alpha must be >= 0, got {alpha}")
        query_items = (
            None if pattern is None else set(make_pattern(pattern))
        )
        answer: list[tuple[Pattern, Graph]] = []
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            for child in node.children:
                if query_items is not None and child.item not in query_items:
                    continue
                graph = child.decomposition.graph_at(alpha)  # type: ignore[union-attr]
                if graph.num_edges == 0:
                    continue
                answer.append((child.pattern, graph))
                queue.append(child)
        return answer

    def query_communities(
        self,
        pattern: Iterable[int] | None = None,
        alpha: float = 0.0,
    ) -> list[tuple[Pattern, set]]:
        """Theme communities (connected components) matching a query."""
        communities: list[tuple[Pattern, set]] = []
        for found_pattern, graph in self.query(pattern, alpha):
            for component in connected_components(graph):
                communities.append((found_pattern, component))
        return communities


def build_edge_tc_tree(
    network: EdgeDatabaseNetwork,
    max_length: int | None = None,
) -> EdgeTCTree:
    """Algorithm 4 over an edge database network."""
    root = EdgeTCNode(None, EMPTY_PATTERN, None)
    truss_graphs: dict[int, Graph] = {}
    queue: deque[EdgeTCNode] = deque()

    for item in network.item_universe():
        decomposition = decompose_edge_network_pattern(network, (item,))
        if decomposition.is_empty():
            continue
        node = EdgeTCNode(item, (item,), decomposition)
        root.children.append(node)
        truss_graphs[id(node)] = decomposition.graph_at(0.0)
        queue.append(node)

    parent_of: dict[int, EdgeTCNode] = {
        id(child): root for child in root.children
    }
    while queue:
        node_f = queue.popleft()
        if max_length is not None and len(node_f.pattern) >= max_length:
            truss_graphs.pop(id(node_f), None)
            parent_of.pop(id(node_f), None)
            continue
        parent = parent_of[id(node_f)]
        graph_f = truss_graphs[id(node_f)]
        for node_b in parent.children:
            if node_b.item <= node_f.item:  # type: ignore[operator]
                continue
            graph_b = truss_graphs.get(id(node_b))
            if graph_b is None:
                graph_b = node_b.decomposition.graph_at(0.0)  # type: ignore[union-attr]
            carrier = intersect_graphs(graph_f, graph_b)
            if carrier.num_edges == 0:
                continue
            child_pattern = node_f.pattern + (node_b.item,)  # type: ignore[operator]
            decomposition = decompose_edge_network_pattern(
                network, child_pattern, carrier=carrier
            )
            if decomposition.is_empty():
                continue
            child = EdgeTCNode(node_b.item, child_pattern, decomposition)
            node_f.children.append(child)
            parent_of[id(child)] = node_f
            truss_graphs[id(child)] = decomposition.graph_at(0.0)
            queue.append(child)
        truss_graphs.pop(id(node_f), None)
        parent_of.pop(id(node_f), None)

    return EdgeTCTree(root)
