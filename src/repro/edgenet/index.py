"""TC-Tree indexing and query answering for edge database networks.

The set-enumeration construction of Algorithm 4 and the pruned BFS of
Algorithm 5 transfer unchanged: nodes store
:class:`~repro.edgenet.decomposition.EdgeTrussDecomposition`, children are
computed inside parent-truss intersections, and empty decompositions prune
whole subtrees (the anti-monotonicity arguments hold for per-edge
frequencies).

Construction rides the same engine as the vertex tree: frontier carriers
are CSR graphs, sibling intersections stay unmaterialized
:class:`~repro.index.decomposition.MaskedCarrier` pairs (Proposition 5.3
as (base, mask)), each surviving child is **one** projection whose
triangle index derives from the parent chain, and ``workers > 1`` fans
layer-1 items plus whole enumeration subtrees across the shared process
pool of :mod:`repro.index.parallel` (shared-memory carrier exchange
included). ``backend="legacy"`` keeps the original dict-of-sets serial
loop as the parity oracle.
"""

from __future__ import annotations

import warnings
from collections import deque
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor

from repro._ordering import EMPTY_PATTERN, Pattern
from repro.edgenet.decomposition import (
    EdgeTrussDecomposition,
    decompose_edge_network_pattern,
    warm_edge_network_triangles,
)
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.errors import TCIndexError
from repro.graphs.components import connected_components
from repro.graphs.csr import GraphLike
from repro.index.query import QueryAnswer, query_tc_tree
from repro.index.tcnode import TCNode
from repro.index.tctree import TCTree, _expand_frontier
from repro.network.theme import intersect_graphs


class EdgeTCNode(TCNode):
    """One node of an edge TC-Tree.

    Structure, child ordering, and traversal come from :class:`TCNode`
    (one shared implementation, same rationale as the decomposition
    models' shared ``CarrierProtocol``). Additionally, non-root nodes
    (``item is not None``) must carry a non-empty decomposition:
    Proposition 5.2 prunes empty subtrees at build time, so a node
    without one is structurally impossible — enforcing it here is what
    lets the query layer drop its ``decomposition is None`` escape
    hatches.
    """

    __slots__ = ()

    def __init__(
        self,
        item: int | None,
        pattern: Pattern,
        decomposition: EdgeTrussDecomposition | None,
    ) -> None:
        if item is not None and (
            decomposition is None or decomposition.is_empty()
        ):
            raise TCIndexError(
                f"edge TC-Tree node {pattern} requires a non-empty "
                "decomposition (Proposition 5.2 prunes empty subtrees)"
            )
        super().__init__(item, pattern, decomposition)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return (
            f"EdgeTCNode(item={self.item}, pattern={self.pattern}, "
            f"children={len(self.children)})"
        )


class EdgeQueryAnswer(QueryAnswer):
    """A :class:`QueryAnswer` over an edge TC-Tree.

    Identical accounting to the vertex tree (RN/VN per the Figure 5
    contract); additionally iterable as the pre-unification
    ``[(pattern, graph), ...]`` shape for old callers — with a
    :class:`DeprecationWarning`, via :meth:`legacy_pairs`.
    """

    def legacy_pairs(self) -> list[tuple[Pattern, object]]:
        """The deprecated tuple-list shape (no warning — explicit opt-in)."""
        return [(truss.pattern, truss.graph) for truss in self.trusses]

    def _warn_legacy(self) -> None:
        warnings.warn(
            "iterating EdgeTCTree.query() answers as (pattern, graph) "
            "tuples is deprecated; use .trusses (or .legacy_pairs())",
            DeprecationWarning,
            stacklevel=3,
        )

    def __iter__(self):
        self._warn_legacy()
        return iter(self.legacy_pairs())

    def __len__(self) -> int:
        return len(self.trusses)

    def __getitem__(self, index):
        self._warn_legacy()
        return self.legacy_pairs()[index]


class EdgeTCTree(TCTree):
    """A built edge TC-Tree.

    Shape queries (``num_nodes``/``depth``/``patterns``/``find_node``/
    ``max_alpha``/traversal) come from :class:`TCTree` — the edge model
    only overrides the query answer (per-edge frequencies summarize into
    the vertex view) and the serving-layer kind tag.
    """

    #: Tree-model tag; the serving layer dispatches snapshot payloads
    #: on it (see :mod:`repro.serve.snapshot`).
    kind = "edge"

    def __init__(self, root: EdgeTCNode, num_items: int | None = None) -> None:
        if num_items is None:
            num_items = len(
                {
                    item
                    for node in root.iter_subtree()
                    if node.item is not None
                    for item in node.pattern
                }
            )
        super().__init__(root, num_items=num_items)  # type: ignore[arg-type]

    def query(
        self,
        pattern: Iterable[int] | None = None,
        alpha: float = 0.0,
    ) -> EdgeQueryAnswer:
        """Algorithm 5 on the edge tree, unified on :class:`QueryAnswer`.

        Delegates to the one shared traversal,
        :func:`repro.index.query.query_tc_tree` — same item prune, same
        Proposition 5.2 prune, same Figure 5 RN/VN accounting (a touched
        child counts as visited even when the item prune discards it).
        :class:`EdgeTCNode` guarantees every non-root node carries a
        non-empty decomposition, so the traversal's ``truss_at`` access
        is always safe here.
        """
        answer = query_tc_tree(self, pattern=pattern, alpha=alpha)
        return EdgeQueryAnswer(
            query_pattern=answer.query_pattern,
            alpha=answer.alpha,
            trusses=answer.trusses,
            retrieved_nodes=answer.retrieved_nodes,
            visited_nodes=answer.visited_nodes,
        )

    def query_communities(
        self,
        pattern: Iterable[int] | None = None,
        alpha: float = 0.0,
    ) -> list[tuple[Pattern, set]]:
        """Theme communities (connected components) matching a query."""
        communities: list[tuple[Pattern, set]] = []
        for truss in self.query(pattern, alpha).trusses:
            for component in connected_components(truss.graph):
                communities.append((truss.pattern, component))
        return communities

    def __repr__(self) -> str:
        return f"EdgeTCTree(nodes={self.num_nodes}, items={self.num_items})"


def build_edge_tc_tree(
    network: EdgeDatabaseNetwork,
    max_length: int | None = None,
    workers: int = 1,
    backend: str = "process",
    reuse: dict[Pattern, EdgeTrussDecomposition] | None = None,
) -> EdgeTCTree:
    """Algorithm 4 over an edge database network.

    Mirrors :func:`repro.index.tctree.build_tc_tree`: ``workers > 1``
    with ``backend="process"`` (the default) fans layer-1 items and whole
    enumeration subtrees across the shared process pool of
    :mod:`repro.index.parallel` (adaptive chunking, compact pickles,
    shared-memory carrier exchange); ``backend="thread"`` keeps a
    GIL-bound thread pool over layer 1 only; ``backend="serial"`` forces
    the single-process CSR path. ``backend="legacy"`` runs the original
    dict-of-sets serial loop — the parity oracle every other backend must
    reproduce (exact patterns and per-level edge sets, thresholds within
    the cohesion tolerance). ``reuse`` optionally maps patterns to
    decompositions known to still be valid (matching patterns skip
    recomputation, same contract as the vertex build); the legacy oracle
    rejects it — an oracle that skips work is no oracle.
    """
    if backend not in ("process", "thread", "serial", "legacy"):
        raise TCIndexError(f"unknown build backend {backend!r}")
    if backend == "legacy":
        if reuse:
            raise TCIndexError(
                "the legacy oracle recomputes every decomposition; "
                "reuse is not supported"
            )
        return _build_edge_tc_tree_legacy(network, max_length=max_length)
    reuse = reuse or {}
    items = network.item_universe()
    if workers > 1 and len(items) > 1 and backend == "process":
        from repro.index.parallel import build_tc_tree_process

        return build_tc_tree_process(
            network, max_length=max_length, workers=workers,
            reuse=reuse, model="edge",
        )

    root = EdgeTCNode(None, EMPTY_PATTERN, None)
    # One network-triangle enumeration, amortized across every layer-1
    # theme subgraph that derives its index from it (projection path).
    warm_edge_network_triangles(network, items)

    def first_layer(item: int) -> EdgeTrussDecomposition:
        cached = reuse.get((item,))
        if cached is not None:
            return cached
        return decompose_edge_network_pattern(
            network, (item,), capture_carrier=True
        )

    if workers > 1 and len(items) > 1 and backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            decompositions = list(pool.map(first_layer, items))
    else:
        decompositions = [first_layer(item) for item in items]

    truss_graphs: dict[int, GraphLike] = {}
    queue: deque[EdgeTCNode] = deque()
    for item, decomposition in zip(items, decompositions):
        if decomposition.is_empty():
            continue
        node = EdgeTCNode(item, (item,), decomposition)
        root.add_child(node)
        queue.append(node)

    parent_of: dict[int, EdgeTCNode] = {
        id(child): root for child in root.children
    }
    _expand_frontier(
        network, queue, truss_graphs, parent_of,  # type: ignore[arg-type]
        max_length=max_length, reuse=reuse,
        decompose=decompose_edge_network_pattern,
        node_factory=EdgeTCNode,
    )
    return EdgeTCTree(root, num_items=len(items))


def _build_edge_tc_tree_legacy(
    network: EdgeDatabaseNetwork,
    max_length: int | None = None,
) -> EdgeTCTree:
    """The original adjacency-set build — the cross-engine parity oracle.

    Frontier carriers materialize lazily via ``graph_at(0.0)`` and are
    **memoized** into the frontier map (the vertex tree's PR 2 fix: a
    sibling rebuilt for one pairing used to be rebuilt for every later
    pairing too), then released by the same pop-time lifecycle as the
    CSR path.
    """
    items = network.item_universe()
    root = EdgeTCNode(None, EMPTY_PATTERN, None)
    truss_graphs: dict[int, GraphLike] = {}
    queue: deque[EdgeTCNode] = deque()

    for item in items:
        decomposition = decompose_edge_network_pattern(
            network, (item,), engine="legacy"
        )
        if decomposition.is_empty():
            continue
        node = EdgeTCNode(item, (item,), decomposition)
        root.add_child(node)
        queue.append(node)

    parent_of: dict[int, EdgeTCNode] = {
        id(child): root for child in root.children
    }
    while queue:
        node_f = queue.popleft()
        if max_length is not None and len(node_f.pattern) >= max_length:
            truss_graphs.pop(id(node_f), None)
            parent_of.pop(id(node_f), None)
            continue
        parent = parent_of[id(node_f)]
        graph_f = truss_graphs.get(id(node_f))
        for node_b in parent.children:
            if node_b.item <= node_f.item:  # type: ignore[operator]
                continue
            if graph_f is None:
                graph_f = node_f.decomposition.graph_at(0.0)  # type: ignore[union-attr]
            graph_b = truss_graphs.get(id(node_b))
            if graph_b is None:
                graph_b = node_b.decomposition.graph_at(0.0)  # type: ignore[union-attr]
                truss_graphs[id(node_b)] = graph_b
            carrier = intersect_graphs(graph_f, graph_b)
            if carrier.num_edges == 0:
                continue
            child_pattern = node_f.pattern + (node_b.item,)  # type: ignore[operator]
            decomposition = decompose_edge_network_pattern(
                network, child_pattern, carrier=carrier, engine="legacy"
            )
            if decomposition.is_empty():
                continue
            child = EdgeTCNode(node_b.item, child_pattern, decomposition)
            node_f.add_child(child)
            parent_of[id(child)] = node_f
            queue.append(child)
        truss_graphs.pop(id(node_f), None)
        parent_of.pop(id(node_f), None)

    return EdgeTCTree(root, num_items=len(items))
