"""Edge cohesion for edge database networks.

The natural generalization of Definition 3.1: the cohesion of edge
``e = (i, j)`` in a subgraph sums, over the triangles ``△ijk`` containing
it, the minimum pattern frequency among the triangle's three *edges*::

    eco_e(C_p) = Σ_{△ijk ⊆ C_p} min(f_ij(p), f_ik(p), f_jk(p))

With all edge frequencies 1 this is again the triangle count (k-truss
support), so the classic equivalences of Section 3.2 carry over.
"""

from __future__ import annotations

from repro.edgenet.theme import EdgeFrequencyMap
from repro.graphs.graph import Edge, Graph, Vertex, edge_key
from repro.graphs.triangles import common_neighbors


def edge_theme_cohesion(
    graph: Graph,
    frequencies: EdgeFrequencyMap,
    u: Vertex,
    v: Vertex,
) -> float:
    """Cohesion of one edge under per-edge frequencies."""
    f_uv = frequencies.get(edge_key(u, v), 0.0)
    total = 0.0
    for w in common_neighbors(graph, u, v):
        f_uw = frequencies.get(edge_key(u, w), 0.0)
        f_vw = frequencies.get(edge_key(v, w), 0.0)
        total += min(f_uv, f_uw, f_vw)
    return total


def edge_theme_cohesion_table(
    graph: Graph, frequencies: EdgeFrequencyMap
) -> dict[Edge, float]:
    """Cohesion of every edge of the subgraph."""
    return {
        edge_key(u, v): edge_theme_cohesion(graph, frequencies, u, v)
        for u, v in graph.iter_edges()
    }
