"""Maximal pattern trusses and theme communities in edge database networks.

The mining stack mirrors the vertex model: an MPTD-style peeling detector,
then a level-wise exact finder with Apriori + intersection pruning. The
anti-monotonicity arguments carry over verbatim — ``f_e`` is anti-monotone
in the pattern, so the theme network (and hence the truss) shrinks as the
pattern grows, and the truss of ``p1 ∪ p2`` lies inside the intersection
of the parents' trusses.
"""

from __future__ import annotations

from collections import deque

from repro._ordering import Pattern
from repro.core.candidates import generate_candidates
from repro.core.mptd import COHESION_TOLERANCE
from repro.core.results import MiningResult
from repro.core.truss import PatternTruss
from repro.edgenet.cohesion import edge_theme_cohesion_table
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.edgenet.theme import EdgeFrequencyMap, induce_edge_theme_network
from repro.errors import MiningError
from repro.graphs.graph import Edge, Graph, edge_key
from repro.graphs.triangles import common_neighbors
from repro.network.theme import intersect_graphs


def _peel(
    graph: Graph,
    frequencies: EdgeFrequencyMap,
    alpha: float,
    cohesion: dict[Edge, float],
) -> None:
    """Remove every edge with cohesion <= α, cascading (in place)."""
    bound = alpha + COHESION_TOLERANCE
    queue: deque[Edge] = deque(
        e for e, value in cohesion.items() if value <= bound
    )
    queued = set(queue)
    while queue:
        edge = queue.popleft()
        u, v = edge
        if not graph.has_edge(u, v):
            continue
        f_uv = frequencies.get(edge, 0.0)
        for w in common_neighbors(graph, u, v):
            uw = edge_key(u, w)
            vw = edge_key(v, w)
            contribution = min(
                f_uv, frequencies.get(uw, 0.0), frequencies.get(vw, 0.0)
            )
            for other in (uw, vw):
                cohesion[other] -= contribution
                if cohesion[other] <= bound and other not in queued:
                    queued.add(other)
                    queue.append(other)
        graph.remove_edge(u, v)
        del cohesion[edge]


def maximal_edge_pattern_truss(
    graph: Graph,
    frequencies: EdgeFrequencyMap,
    alpha: float,
) -> tuple[Graph, dict[Edge, float]]:
    """MPTD for edge theme networks; inputs are not mutated."""
    if alpha < 0.0:
        raise MiningError(f"alpha must be >= 0, got {alpha}")
    work = graph.copy()
    cohesion = edge_theme_cohesion_table(work, frequencies)
    _peel(work, frequencies, alpha, cohesion)
    work.discard_isolated_vertices()
    return work, cohesion


def _vertex_view(frequencies: EdgeFrequencyMap, graph: Graph) -> dict:
    """Per-vertex summary frequencies for reporting (max incident f_e)."""
    view: dict = {}
    for (u, v), f in frequencies.items():
        if graph.has_edge(u, v):
            view[u] = max(view.get(u, 0.0), f)
            view[v] = max(view.get(v, 0.0), f)
    return view


def edge_tcfi(
    network: EdgeDatabaseNetwork,
    alpha: float,
    max_length: int | None = None,
) -> MiningResult:
    """Exact level-wise mining over an edge database network.

    Returns a :class:`~repro.core.results.MiningResult` whose trusses carry
    per-vertex summary frequencies (the max incident edge frequency) for
    reporting; the authoritative per-edge frequencies are implied by the
    edge databases.
    """
    if alpha < 0.0:
        raise MiningError(f"alpha must be >= 0, got {alpha}")
    result = MiningResult(alpha)
    level: dict[Pattern, Graph] = {}
    for item in network.item_universe():
        pattern: Pattern = (item,)
        graph, frequencies = induce_edge_theme_network(network, pattern)
        truss, _ = maximal_edge_pattern_truss(graph, frequencies, alpha)
        if truss.num_edges:
            level[pattern] = truss
            result.add(
                PatternTruss(
                    pattern, truss, _vertex_view(frequencies, truss), alpha
                )
            )

    k = 2
    while level and (max_length is None or k <= max_length):
        next_level: dict[Pattern, Graph] = {}
        for candidate in generate_candidates(sorted(level)):
            carrier = intersect_graphs(
                level[candidate.left_parent], level[candidate.right_parent]
            )
            if carrier.num_edges == 0:
                continue
            graph, frequencies = induce_edge_theme_network(
                network, candidate.pattern, carrier=carrier
            )
            if graph.num_edges == 0:
                continue
            truss, _ = maximal_edge_pattern_truss(graph, frequencies, alpha)
            if truss.num_edges:
                next_level[candidate.pattern] = truss
                result.add(
                    PatternTruss(
                        candidate.pattern,
                        truss,
                        _vertex_view(frequencies, truss),
                        alpha,
                    )
                )
        level = next_level
        k += 1
    return result


class EdgeThemeCommunityFinder:
    """Facade mirroring :class:`~repro.core.finder.ThemeCommunityFinder`."""

    def __init__(self, network: EdgeDatabaseNetwork) -> None:
        self.network = network

    def find(
        self, alpha: float, max_length: int | None = None
    ) -> MiningResult:
        return edge_tcfi(self.network, alpha, max_length)

    def find_communities(
        self,
        alpha: float,
        max_length: int | None = None,
        min_size: int = 3,
    ):
        from repro.core.communities import extract_theme_communities

        return [
            c
            for c in extract_theme_communities(self.find(alpha, max_length))
            if c.size >= min_size
        ]
