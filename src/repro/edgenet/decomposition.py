"""Truss decomposition for edge theme networks.

The Theorem 6.1 argument only uses two facts — cohesion is a sum of
per-triangle minima, and peeling at the current minimum cohesion strictly
shrinks the truss — both of which hold verbatim with per-edge frequencies.
So an edge theme network's maximal pattern truss decomposes into the same
ascending-threshold linked list ``L_p``, reconstructed by Equation 1.

The container stores per-*edge* frequencies (the vertex model stores
per-vertex ones); reconstruction yields plain graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._ordering import Pattern, make_pattern
from repro.core.mptd import COHESION_TOLERANCE
from repro.edgenet.cohesion import edge_theme_cohesion_table
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.edgenet.theme import EdgeFrequencyMap, induce_edge_theme_network
from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, GraphLike, as_csr
from repro.graphs.graph import Edge, Graph
from repro.graphs.support import CSR_MIN_EDGES, decompose_cohesion_edges


@dataclass
class EdgeDecompositionLevel:
    """One linked-list node: threshold + the edges removed at it."""

    alpha: float
    removed_edges: list[Edge]


@dataclass
class EdgeTrussDecomposition:
    """``L_p`` for an edge theme network."""

    pattern: Pattern
    levels: list[EdgeDecompositionLevel] = field(default_factory=list)
    frequencies: EdgeFrequencyMap = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not self.levels

    @property
    def num_edges(self) -> int:
        return sum(len(level.removed_edges) for level in self.levels)

    @property
    def max_alpha(self) -> float:
        if not self.levels:
            return 0.0
        return self.levels[-1].alpha

    def thresholds(self) -> list[float]:
        return [level.alpha for level in self.levels]

    def edges_at(self, alpha: float) -> list[Edge]:
        """Equation 1 with the shared cohesion tolerance."""
        bound = alpha + COHESION_TOLERANCE
        return [
            edge
            for level in self.levels
            if level.alpha > bound
            for edge in level.removed_edges
        ]

    def graph_at(self, alpha: float) -> Graph:
        graph = Graph()
        for u, v in self.edges_at(alpha):
            graph.add_edge(u, v)
        return graph


def decompose_edge_truss(
    pattern: Pattern,
    truss_graph: Graph,
    frequencies: EdgeFrequencyMap,
    cohesion: dict[Edge, float],
) -> EdgeTrussDecomposition:
    """Iterated peeling of an α = 0 edge truss; inputs are consumed."""
    from repro.edgenet.finder import _peel

    decomposition = EdgeTrussDecomposition(
        pattern=pattern,
        frequencies={
            e: f
            for e, f in frequencies.items()
            if truss_graph.has_edge(*e)
        },
    )
    while cohesion:
        beta = min(cohesion.values())
        before = set(cohesion)
        _peel(truss_graph, frequencies, beta, cohesion)
        removed = sorted(before - set(cohesion))
        decomposition.levels.append(EdgeDecompositionLevel(beta, removed))
    return decomposition


def _decompose_edge_theme_csr(
    pattern: Pattern,
    csr: CSRGraph,
    frequencies: EdgeFrequencyMap,
) -> EdgeTrussDecomposition:
    """CSR-native edge decomposition: per-edge weights, one engine call.

    Runs :func:`~repro.graphs.support.decompose_cohesion_edges` — which
    derives the triangle index from ``csr``'s projection parent when one
    is cached — then converts edge ids back to canonical label pairs.
    Per-level removed sets are sorted into the legacy
    :func:`decompose_edge_truss` shape; as with the vertex engine,
    cross-engine parity is exact on level membership and
    tolerance-level on threshold floats (the two engines sum cohesion
    in different orders), while projection on/off parity within this
    engine is exact.
    """
    labels = csr.labels
    edge_u = csr.edge_u
    edge_v = csr.edge_v
    m = csr.num_edges
    freq_list = [
        frequencies.get((labels[edge_u[e]], labels[edge_v[e]]), 0.0)
        for e in range(m)
    ]
    alive, levels = decompose_cohesion_edges(csr, freq_list)
    decomposition = EdgeTrussDecomposition(
        pattern=pattern,
        frequencies={
            (labels[edge_u[e]], labels[edge_v[e]]): freq_list[e]
            for e in range(m)
            if alive[e]
        },
    )
    for beta, removed in levels:
        decomposition.levels.append(
            EdgeDecompositionLevel(
                beta,
                sorted(
                    (labels[edge_u[e]], labels[edge_v[e]]) for e in removed
                ),
            )
        )
    return decomposition


def decompose_edge_network_pattern(
    network: EdgeDatabaseNetwork,
    pattern: Pattern,
    carrier: GraphLike | None = None,
    engine: str = "auto",
) -> EdgeTrussDecomposition:
    """Induce, peel at α = 0, decompose — one call.

    ``engine`` mirrors the vertex model: ``"auto"`` routes big
    int-labelled edge theme networks through the flat CSR engine
    (per-edge triangle weights; a CSR ``carrier`` is *projected* down to
    its frequency-positive edges so the child theme network derives its
    triangle index from the carrier's chain instead of re-enumerating),
    ``"csr"`` forces the engine, ``"legacy"`` forces the adjacency-set
    path — the parity oracle.
    """
    from repro.edgenet.finder import maximal_edge_pattern_truss

    if engine not in ("auto", "csr", "legacy"):
        raise GraphError(f"unknown decomposition engine {engine!r}")
    if engine != "legacy" and isinstance(carrier, CSRGraph):
        # Probe only carrier edges, build the f_e > 0 mask, and project:
        # the edge theme network *is* the carrier minus zero-frequency
        # edges, and projection provenance keeps derivation available.
        canonical = make_pattern(pattern)
        databases = network.databases
        labels = carrier.labels
        edge_u = carrier.edge_u
        edge_v = carrier.edge_v
        frequencies: EdgeFrequencyMap = {}
        mask = bytearray(carrier.num_edges)
        kept = 0
        for e in range(carrier.num_edges):
            edge = (labels[edge_u[e]], labels[edge_v[e]])
            database = databases.get(edge)
            if database is None:
                continue
            f = database.frequency(canonical)
            if f > 0.0:
                mask[e] = 1
                kept += 1
                frequencies[edge] = f
        if engine == "csr" or kept >= CSR_MIN_EDGES:
            return _decompose_edge_theme_csr(
                pattern, carrier.project(mask), frequencies
            )
        graph = Graph()
        for u, v in frequencies:
            graph.add_edge(u, v)
    else:
        graph, frequencies = induce_edge_theme_network(
            network, pattern, carrier=carrier
        )
        if engine == "csr" or (
            engine == "auto" and graph.num_edges >= CSR_MIN_EDGES
        ):
            csr = as_csr(graph)
            if csr is not None:
                return _decompose_edge_theme_csr(pattern, csr, frequencies)
            if engine == "csr":
                raise GraphError(
                    "graph is not CSR-eligible (non-int labels)"
                )
    truss, cohesion = maximal_edge_pattern_truss(graph, frequencies, 0.0)
    # Re-derive the cohesion table bound to the peeled graph copy so the
    # decomposition owns mutable state.
    work = truss.copy()
    table = edge_theme_cohesion_table(work, frequencies)
    return decompose_edge_truss(pattern, work, frequencies, table)
