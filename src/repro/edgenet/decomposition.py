"""Truss decomposition for edge theme networks.

The Theorem 6.1 argument only uses two facts — cohesion is a sum of
per-triangle minima, and peeling at the current minimum cohesion strictly
shrinks the truss — both of which hold verbatim with per-edge frequencies.
So an edge theme network's maximal pattern truss decomposes into the same
ascending-threshold linked list ``L_p``, reconstructed by Equation 1.

The container stores per-*edge* frequencies (the vertex model stores
per-vertex ones); reconstruction yields plain graphs.

Routing mirrors :mod:`repro.index.decomposition`: a CSR (or masked) carrier
keeps the whole round trip on the flat engine — the edge theme network *is*
the carrier minus zero-frequency edges, so the decomposition graph is one
:meth:`~repro.graphs.csr.CSRGraph.project` whose triangle index derives
from the carrier's chain — and ``capture_carrier`` stashes ``C*_p(0)`` as a
pending projection for the TC-Tree frontier. The legacy adjacency-set path
is preserved untouched as the parity oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import compress

from repro._ordering import Pattern, make_pattern
from repro.core.mptd import COHESION_TOLERANCE
from repro.core.truss import PatternTruss
from repro.edgenet.cohesion import edge_theme_cohesion_table
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.edgenet.theme import EdgeFrequencyMap, induce_edge_theme_network
from repro.engine.registry import count_routes
from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, GraphLike, as_csr
from repro.graphs.graph import Edge, Graph
from repro.graphs.support import (
    decompose_cohesion_edges,
    edge_frequency_list,
    projection_enabled,
    triangle_index,
)
from repro.index.decomposition import (
    CarrierProtocol,
    MaskedCarrier,
    _PendingProjection,
)

#: An edge decomposition reuses the network CSR (shared cached triangle
#: index, no subgraph build) only when the theme covers most of it —
#: mirrors :data:`repro.index.decomposition.CSR_NET_REUSE_MIN_EDGES`.
CSR_NET_REUSE_MIN_EDGES = 1024

#: Engine cutover for *edge* theme networks. Far below the vertex
#: model's :data:`~repro.graphs.support.CSR_MIN_EDGES` (512): the legacy
#: edge path recomputes common neighbourhoods per edge for the cohesion
#: table *and* per peel step, so the flat engine — whose triangle index
#: usually *derives* from the carrier chain here — wins much earlier.
#: Measured on the dense benchmark family (sweep 512→16): 512 = 0.79 s,
#: 256 = 0.59 s, 64 = 0.53 s, 32 = 0.57 s; the curve is flat below 128,
#: so 64 leaves margin on both sides.
EDGE_CSR_MIN_EDGES = 64


@dataclass
class EdgeDecompositionLevel:
    """One linked-list node: threshold + the edges removed at it."""

    alpha: float
    removed_edges: list[Edge]


@dataclass
class EdgeTrussDecomposition(CarrierProtocol):
    """``L_p`` for an edge theme network.

    Carries the same ``C*_p(0)`` capture/frontier/pickle protocol as the
    vertex :class:`~repro.index.decomposition.TrussDecomposition`
    (shared :class:`~repro.index.decomposition.CarrierProtocol`), so the
    TC-Tree frontier and the process pool treat both models alike.
    """

    pattern: Pattern
    levels: list[EdgeDecompositionLevel] = field(default_factory=list)
    frequencies: EdgeFrequencyMap = field(default_factory=dict)
    #: ``C*_p(0)`` captured by the CSR engine — same protocol as
    #: :class:`repro.index.decomposition.TrussDecomposition.carrier0`:
    #: a live CSR graph, a pending projection, or the canonical-sorted
    #: alive edge list (the pickle exchange shape). Excluded from
    #: equality and repr.
    carrier0: CSRGraph | list[Edge] | _PendingProjection | None = field(
        default=None, repr=False, compare=False
    )
    #: How this decomposition was computed (``"<graph choice>+<engine>"``,
    #: e.g. ``"carrier-projected+csr"``). Diagnostic only.
    route: str | None = field(default=None, repr=False, compare=False)

    def is_empty(self) -> bool:
        return not self.levels

    @property
    def num_edges(self) -> int:
        return sum(len(level.removed_edges) for level in self.levels)

    @property
    def max_alpha(self) -> float:
        if not self.levels:
            return 0.0
        return self.levels[-1].alpha

    def thresholds(self) -> list[float]:
        return [level.alpha for level in self.levels]

    def edges_at(self, alpha: float) -> list[Edge]:
        """Equation 1 with the shared cohesion tolerance."""
        bound = alpha + COHESION_TOLERANCE
        return [
            edge
            for level in self.levels
            if level.alpha > bound
            for edge in level.removed_edges
        ]

    def graph_at(self, alpha: float) -> Graph:
        graph = Graph()
        for u, v in self.edges_at(alpha):
            graph.add_edge(u, v)
        return graph

    def truss_at(self, alpha: float) -> PatternTruss:
        """``C*_p(α)`` as a :class:`PatternTruss` for the query layer.

        The truss carries per-vertex *summary* frequencies (max incident
        ``f_e``, the reporting convention of
        :func:`repro.edgenet.finder.edge_tcfi`); the authoritative
        per-edge frequencies stay on :attr:`frequencies`.
        """
        graph = self.graph_at(alpha)
        view: dict = {}
        for (u, v), f in self.frequencies.items():
            if graph.has_edge(u, v):
                if f > view.get(u, 0.0):
                    view[u] = f
                if f > view.get(v, 0.0):
                    view[v] = f
        return PatternTruss(self.pattern, graph, view, alpha)

    # ------------------------------------------------------------------
    # the shared TC-Tree frontier-carrier protocol (CarrierProtocol)
    # ------------------------------------------------------------------
    def _engine_cutover(self) -> int:
        # Read at call time so tests patching the module constant (and
        # future tuning) take effect immediately.
        return EDGE_CSR_MIN_EDGES

    def _graph0(self) -> Graph:
        return self.graph_at(0.0)


def decompose_edge_truss(
    pattern: Pattern,
    truss_graph: Graph,
    frequencies: EdgeFrequencyMap,
    cohesion: dict[Edge, float],
) -> EdgeTrussDecomposition:
    """Iterated peeling of an α = 0 edge truss; inputs are consumed."""
    from repro.edgenet.finder import _peel

    decomposition = EdgeTrussDecomposition(
        pattern=pattern,
        frequencies={
            e: f
            for e, f in frequencies.items()
            if truss_graph.has_edge(*e)
        },
    )
    while cohesion:
        beta = min(cohesion.values())
        before = set(cohesion)
        _peel(truss_graph, frequencies, beta, cohesion)
        removed = sorted(before - set(cohesion))
        decomposition.levels.append(EdgeDecompositionLevel(beta, removed))
    return decomposition


def _decompose_edge_theme_csr(
    pattern: Pattern,
    csr: CSRGraph,
    frequencies: EdgeFrequencyMap,
    capture_carrier: bool = False,
) -> EdgeTrussDecomposition:
    """CSR-native edge decomposition: per-edge weights, one engine call.

    Runs :func:`~repro.graphs.support.decompose_cohesion_edges` — which
    derives the triangle index from ``csr``'s projection parent when one
    is cached — then converts edge ids back to canonical label pairs.
    Per-level removed sets are sorted into the legacy
    :func:`decompose_edge_truss` shape; as with the vertex engine,
    cross-engine parity is exact on level membership and
    tolerance-level on threshold floats (the two engines sum cohesion
    in different orders), while projection on/off parity within this
    engine is exact.

    ``capture_carrier`` stashes ``C*_p(0)`` as a pending projection of
    ``csr`` (or ``csr`` itself when nothing was peeled) — the frontier
    materializes it lazily, with provenance intact so children derive
    their triangle indexes instead of re-enumerating.
    """
    labels = csr.labels
    edge_u = csr.edge_u
    edge_v = csr.edge_v
    m = csr.num_edges
    freq_list = edge_frequency_list(csr, frequencies)
    alive, levels = decompose_cohesion_edges(csr, freq_list)
    carrier0: CSRGraph | list[Edge] | _PendingProjection | None = None
    if capture_carrier:
        if sum(alive) == m and not csr.has_isolated_vertices():
            carrier0 = csr
        else:
            carrier0 = _PendingProjection(csr, alive)
    decomposition = EdgeTrussDecomposition(
        pattern=pattern,
        frequencies={
            (labels[edge_u[e]], labels[edge_v[e]]): freq_list[e]
            for e in range(m)
            if alive[e]
        },
        carrier0=carrier0,
    )
    for beta, removed in levels:
        decomposition.levels.append(
            EdgeDecompositionLevel(
                beta,
                sorted(
                    (labels[edge_u[e]], labels[edge_v[e]]) for e in removed
                ),
            )
        )
    return decomposition


def covers_most_edges(num_positive: int, num_edges: int) -> bool:
    """The ≥90% frequency-coverage cutoff on *edges*: decompose over the
    unfiltered network CSR instead of projecting a subgraph. Shared by
    the route choice and :func:`warm_edge_network_triangles` so tuning it
    never desynchronizes the two."""
    return 10 * num_positive >= 9 * num_edges


def _probe_edge_frequencies(
    network: EdgeDatabaseNetwork,
    canonical: Pattern,
    base: CSRGraph,
    within,
) -> tuple[EdgeFrequencyMap, bytearray, int]:
    """Frequency-probe the edges of ``base`` flagged by ``within``.

    Returns ``(frequencies, mask, kept)`` where ``mask`` flags (in base
    edge-id space) the frequency-positive edges — for a masked carrier
    the result is the AND of the intersection mask and the frequency
    filter, so the caller's restricted decomposition graph is a single
    projection of the base (the Prop-5.3 fast path).
    """
    databases = network.databases
    labels = base.labels
    edge_u = base.edge_u
    edge_v = base.edge_v
    m = base.num_edges
    frequencies: EdgeFrequencyMap = {}
    mask = bytearray(m)
    kept = 0
    candidates = range(m) if within is None else compress(range(m), within)
    if len(canonical) == 1:
        # Single-item fast path (the whole first TC-Tree layer): read the
        # vertical index instead of scanning transactions per probe.
        item = canonical[0]
        for e in candidates:
            edge = (labels[edge_u[e]], labels[edge_v[e]])
            database = databases.get(edge)
            if database is None:
                continue
            f = database.item_frequency(item)
            if f > 0.0:
                mask[e] = 1
                kept += 1
                frequencies[edge] = f
        return frequencies, mask, kept
    for e in candidates:
        edge = (labels[edge_u[e]], labels[edge_v[e]])
        database = databases.get(edge)
        if database is None:
            continue
        f = database.frequency(canonical)
        if f > 0.0:
            mask[e] = 1
            kept += 1
            frequencies[edge] = f
    return frequencies, mask, kept


def decompose_edge_network_pattern(
    network: EdgeDatabaseNetwork,
    pattern: Pattern,
    carrier: GraphLike | MaskedCarrier | None = None,
    engine: str = "auto",
    capture_carrier: bool = False,
) -> EdgeTrussDecomposition:
    """Induce, peel at α = 0, decompose — one call.

    ``engine`` mirrors the vertex model: ``"auto"`` routes big
    int-labelled edge theme networks through the flat CSR engine,
    ``"csr"`` forces the engine, ``"legacy"`` forces the adjacency-set
    path — the parity oracle. A CSR ``carrier`` is *projected* down to
    its frequency-positive edges so the child theme network derives its
    triangle index from the carrier's chain instead of re-enumerating; a
    :class:`~repro.index.decomposition.MaskedCarrier` (the TC-Tree
    frontier's unmaterialized Prop-5.3 intersection) ANDs its edge mask
    into the frequency filter, so the decomposition graph is **one**
    projection of the base. Without a carrier the network CSR itself is
    the base: near-total coverage decomposes over it unfiltered (shared
    cached triangle index, the α = 0 peel prunes), sparser themes get
    one projection. The route choice never depends on the projection
    switch, keeping projection on/off builds bit-identical by
    construction.
    """
    from repro.edgenet.finder import maximal_edge_pattern_truss

    if engine not in ("auto", "csr", "legacy"):
        raise GraphError(f"unknown decomposition engine {engine!r}")
    if engine != "legacy" and isinstance(carrier, (CSRGraph, MaskedCarrier)):
        masked = isinstance(carrier, MaskedCarrier)
        base = carrier.base if masked else carrier
        frequencies, mask, kept = _probe_edge_frequencies(
            network, make_pattern(pattern), base,
            carrier.mask if masked else None,
        )
        if kept == 0:
            return EdgeTrussDecomposition(
                pattern=pattern, route="carrier-empty+none"
            )
        if engine == "csr" or kept >= EDGE_CSR_MIN_EDGES:
            decomposition = _decompose_edge_theme_csr(
                pattern, base.project(mask), frequencies,
                capture_carrier=capture_carrier,
            )
            decomposition.route = "carrier-projected+csr"
            return decomposition
        graph = Graph()
        for u, v in frequencies:
            graph.add_edge(u, v)
        graph_route = "carrier-small"
    elif engine != "legacy" and carrier is None and (
        csr_net := network.csr_graph()
    ) is not None:
        frequencies, mask, kept = _probe_edge_frequencies(
            network, make_pattern(pattern), csr_net, None
        )
        if kept == 0:
            return EdgeTrussDecomposition(
                pattern=pattern, route="net-empty+none"
            )
        if (
            kept >= CSR_NET_REUSE_MIN_EDGES
            and covers_most_edges(kept, csr_net.num_edges)
        ):
            # The theme spans most of the network: decompose over the
            # network CSR itself and let the α = 0 peel prune. A
            # zero-frequency edge weighs every triangle through it 0, so
            # it dies at α = 0 without perturbing any cohesion sum —
            # levels are bit-identical to the projected variant, and the
            # network's cached triangle index is shared by every caller.
            decomposition = _decompose_edge_theme_csr(
                pattern, csr_net, frequencies,
                capture_carrier=capture_carrier,
            )
            decomposition.route = "net-full+csr"
            return decomposition
        if engine == "csr" or kept >= EDGE_CSR_MIN_EDGES:
            decomposition = _decompose_edge_theme_csr(
                pattern, csr_net.project(mask), frequencies,
                capture_carrier=capture_carrier,
            )
            decomposition.route = "net-projected+csr"
            return decomposition
        graph = Graph()
        for u, v in frequencies:
            graph.add_edge(u, v)
        graph_route = "net-small"
    else:
        if isinstance(carrier, MaskedCarrier):
            carrier = carrier.materialize()
        graph, frequencies = induce_edge_theme_network(
            network, pattern, carrier=carrier
        )
        graph_route = "within" if carrier is not None else "induced"
        if engine == "csr" or (
            engine == "auto" and graph.num_edges >= EDGE_CSR_MIN_EDGES
        ):
            csr = as_csr(graph)
            if csr is not None:
                decomposition = _decompose_edge_theme_csr(
                    pattern, csr, frequencies,
                    capture_carrier=capture_carrier,
                )
                decomposition.route = f"{graph_route}+csr"
                return decomposition
            if engine == "csr":
                raise GraphError(
                    "graph is not CSR-eligible (non-int labels)"
                )
    truss, cohesion = maximal_edge_pattern_truss(graph, frequencies, 0.0)
    # Re-derive the cohesion table bound to the peeled graph copy so the
    # decomposition owns mutable state.
    work = truss.copy()
    table = edge_theme_cohesion_table(work, frequencies)
    decomposition = decompose_edge_truss(pattern, work, frequencies, table)
    decomposition.route = f"{graph_route}+legacy"
    return decomposition


# Seven return sites, one route counter: the registry decorator reads the
# ``route`` tag off whichever decomposition came back.
decompose_edge_network_pattern = count_routes(
    "edge", decompose_edge_network_pattern
)


def warm_edge_network_triangles(
    network: EdgeDatabaseNetwork, items: list[int]
) -> bool:
    """Pre-enumerate the network CSR's triangle index when layer 1 will
    amortize it; returns True when warming happened.

    The edge-model twin of
    :func:`repro.index.decomposition.warm_network_triangles`: with
    projection on, every layer-1 theme graph that projects off the
    network CSR derives its index from the network's, and the expected
    enumeration cost of item ``s``'s theme subgraph scales like its
    *edge* share squared. With projection off only the covers-most
    regime reuses the network index.
    """
    csr = network.csr_graph()
    if (
        csr is None
        or csr.num_edges < CSR_NET_REUSE_MIN_EDGES
        or csr.num_vertices == 0
    ):
        return False
    if csr._tri is not None:
        return True
    m = csr.num_edges
    if projection_enabled():
        load = 0.0
        for item in items:
            share = len(network.edges_containing_item(item)) / m
            load += share * share
            if load >= 1.0:
                triangle_index(csr)
                return True
        return False
    for item in items:
        if covers_most_edges(len(network.edges_containing_item(item)), m):
            triangle_index(csr)
            return True
    return False
