"""Truss decomposition for edge theme networks.

The Theorem 6.1 argument only uses two facts — cohesion is a sum of
per-triangle minima, and peeling at the current minimum cohesion strictly
shrinks the truss — both of which hold verbatim with per-edge frequencies.
So an edge theme network's maximal pattern truss decomposes into the same
ascending-threshold linked list ``L_p``, reconstructed by Equation 1.

The container stores per-*edge* frequencies (the vertex model stores
per-vertex ones); reconstruction yields plain graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._ordering import Pattern
from repro.core.mptd import COHESION_TOLERANCE
from repro.edgenet.cohesion import edge_theme_cohesion_table
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.edgenet.theme import EdgeFrequencyMap, induce_edge_theme_network
from repro.graphs.graph import Edge, Graph


@dataclass
class EdgeDecompositionLevel:
    """One linked-list node: threshold + the edges removed at it."""

    alpha: float
    removed_edges: list[Edge]


@dataclass
class EdgeTrussDecomposition:
    """``L_p`` for an edge theme network."""

    pattern: Pattern
    levels: list[EdgeDecompositionLevel] = field(default_factory=list)
    frequencies: EdgeFrequencyMap = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not self.levels

    @property
    def num_edges(self) -> int:
        return sum(len(level.removed_edges) for level in self.levels)

    @property
    def max_alpha(self) -> float:
        if not self.levels:
            return 0.0
        return self.levels[-1].alpha

    def thresholds(self) -> list[float]:
        return [level.alpha for level in self.levels]

    def edges_at(self, alpha: float) -> list[Edge]:
        """Equation 1 with the shared cohesion tolerance."""
        bound = alpha + COHESION_TOLERANCE
        return [
            edge
            for level in self.levels
            if level.alpha > bound
            for edge in level.removed_edges
        ]

    def graph_at(self, alpha: float) -> Graph:
        graph = Graph()
        for u, v in self.edges_at(alpha):
            graph.add_edge(u, v)
        return graph


def decompose_edge_truss(
    pattern: Pattern,
    truss_graph: Graph,
    frequencies: EdgeFrequencyMap,
    cohesion: dict[Edge, float],
) -> EdgeTrussDecomposition:
    """Iterated peeling of an α = 0 edge truss; inputs are consumed."""
    from repro.edgenet.finder import _peel

    decomposition = EdgeTrussDecomposition(
        pattern=pattern,
        frequencies={
            e: f
            for e, f in frequencies.items()
            if truss_graph.has_edge(*e)
        },
    )
    while cohesion:
        beta = min(cohesion.values())
        before = set(cohesion)
        _peel(truss_graph, frequencies, beta, cohesion)
        removed = sorted(before - set(cohesion))
        decomposition.levels.append(EdgeDecompositionLevel(beta, removed))
    return decomposition


def decompose_edge_network_pattern(
    network: EdgeDatabaseNetwork,
    pattern: Pattern,
    carrier: Graph | None = None,
) -> EdgeTrussDecomposition:
    """Induce, peel at α = 0, decompose — one call."""
    from repro.edgenet.finder import maximal_edge_pattern_truss

    graph, frequencies = induce_edge_theme_network(
        network, pattern, carrier=carrier
    )
    truss, cohesion = maximal_edge_pattern_truss(graph, frequencies, 0.0)
    # Re-derive the cohesion table bound to the peeled graph copy so the
    # decomposition owns mutable state.
    work = truss.copy()
    table = edge_theme_cohesion_table(work, frequencies)
    return decompose_edge_truss(pattern, work, frequencies, table)
