"""Edge theme network induction.

For a pattern ``p``, the edge theme network keeps exactly the edges with
``f_e(p) > 0`` (any endpoint of such an edge stays). The induction returns
the subgraph together with the per-edge frequency map — the pair every
downstream algorithm consumes.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro._ordering import make_pattern
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.graphs.graph import Edge, Graph

EdgeFrequencyMap = dict[Edge, float]


def induce_edge_theme_network(
    network: EdgeDatabaseNetwork,
    pattern: Iterable[int],
    carrier: Graph | None = None,
) -> tuple[Graph, EdgeFrequencyMap]:
    """The edge theme network of ``pattern``.

    ``carrier`` optionally restricts the candidate edges (the intersection
    shortcut of the level-wise finder — the edge-network analogue of
    Proposition 5.3).
    """
    canonical = make_pattern(pattern)
    graph = Graph()
    frequencies: EdgeFrequencyMap = {}
    if carrier is None:
        candidates = network.databases.items()
    else:
        candidates = (
            (edge, network.databases[edge])
            for edge in carrier.iter_edges()
            if edge in network.databases
        )
    for edge, database in candidates:
        f = database.frequency(canonical)
        if f > 0.0:
            graph.add_edge(*edge)
            frequencies[edge] = f
    return graph, frequencies
