"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands::

    repro generate --dataset BK --scale small --out bk.json
    repro stats bk.json                      # also accepts index files
    repro mine bk.json --alpha 0.2 --method tcfi
    repro index bk.json --out bk.tcsnap --format snapshot
    repro edge-index coauth.json --out coauth.tcsnap --workers 4
    repro snapshot bk.tctree.json --out bk.tcsnap
    repro query bk.tcsnap --alpha 0.2 [--pattern 3,7] [--top-k 5]
    repro query coauth.tcsnap --kind edge --alpha 0.2
    repro serve bk.tcsnap --port 8080
    repro search bk.json --vertex 12 --alpha 0.2 [--top 5]
    repro search bk.tcsnap --vertices 2,3 --attributes 0,1 [--alpha 0.2]
    repro export bk.json --format graphml --out bk.graphml [--alpha 0.2]
    repro experiment table2 --scale tiny
    repro bench run benchmarks/fleet.yaml --profile smoke [--dry-run]
    repro bench summarize [--records-dir ...] [--out-dir .]
    repro bench trend --baselines-dir . [--threshold 1.25]
    repro bench tune-cutovers [--apply]
    repro lint [--format json] [--rule lock-discipline] [--no-baseline]
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from pathlib import Path

from repro.bench import experiments
from repro.bench.reporting import format_table
from repro.core.finder import ThemeCommunityFinder
from repro.index.warehouse import ThemeCommunityWarehouse
from repro.network.io import load_network, save_network
from repro.network.stats import network_statistics


def _cmd_generate(args: argparse.Namespace) -> int:
    maker = experiments.DATASET_MAKERS.get(args.dataset.upper())
    if maker is None:
        print(
            f"unknown dataset {args.dataset!r}; choose from "
            f"{sorted(experiments.DATASET_MAKERS)}",
            file=sys.stderr,
        )
        return 2
    network = maker(args.scale)
    save_network(network, args.out)
    stats = network_statistics(network, count_triangles_too=False)
    print(f"wrote {args.out}: {stats.as_row()}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.engine import registry
    from repro.index.stats import tc_tree_statistics
    from repro.serve.snapshot import TCTreeSnapshot, is_snapshot_file

    if is_snapshot_file(args.network) or _is_index_document(args.network):
        # An index file (binary snapshot or JSON warehouse document):
        # report the tree profile instead of network statistics, titled
        # by the registered model's display name.
        if is_snapshot_file(args.network):
            with TCTreeSnapshot.open(args.network) as snapshot:
                tree = snapshot.materialize_tree()
        else:
            tree = ThemeCommunityWarehouse.load(args.network).tree
        stats = tc_tree_statistics(tree)
        prefix = registry.model_for_tree(tree).display
        print(
            format_table(
                [stats.as_row()],
                title=f"{prefix} statistics of {args.network}",
            )
        )
        return 0
    network = load_network(args.network)
    stats = network_statistics(network)
    rows = [dict(stats.as_row(), **{"#Triangles": stats.num_triangles})]
    print(format_table(rows, title=f"statistics of {args.network}"))
    return 0


def _is_index_document(path: str) -> bool:
    """Cheap sniff: does the file open with a repro-tctree JSON header?"""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return '"repro-tctree"' in handle.read(256)
    except (OSError, UnicodeDecodeError):
        return False


def _cmd_mine(args: argparse.Namespace) -> int:
    network = load_network(args.network)
    finder = ThemeCommunityFinder(network)
    communities = finder.find_communities(
        alpha=args.alpha,
        method=args.method,
        epsilon=args.epsilon,
        max_length=args.max_length,
    )
    print(
        f"found {len(communities)} theme communities "
        f"(alpha={args.alpha}, method={args.method})"
    )
    for community in communities[: args.top]:
        theme = ",".join(str(x) for x in community.theme_labels(network))
        members = ",".join(
            str(m) for m in community.member_labels(network)[:10]
        )
        suffix = "..." if community.size > 10 else ""
        print(f"  theme=[{theme}] size={community.size}: {members}{suffix}")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from repro.obs.trace import Tracer, tracing

    network = load_network(args.network)
    # Tracing wraps the build AND the save so the snapshot.write span
    # lands in the same tree as the build phases.
    tracer = Tracer() if args.trace else None
    with tracing(tracer) if tracer else nullcontext():
        warehouse = ThemeCommunityWarehouse.build(
            network,
            max_length=args.max_length,
            workers=args.workers,
            backend=args.backend,
        )
        if args.format == "snapshot":
            warehouse.save_snapshot(args.out)
        else:
            warehouse.save(args.out)
    if tracer is not None:
        tracer.write(args.trace, fmt="chrome")
        print(f"wrote build trace to {args.trace} (chrome://tracing)")
    low, high = warehouse.alpha_range()
    print(
        f"wrote {args.out} ({args.format}): "
        f"{warehouse.num_indexed_trusses} trusses, "
        f"non-trivial alpha range [{low}, {high:.4g})"
    )
    return 0


def _cmd_edge_index(args: argparse.Namespace) -> int:
    from repro.edgenet.index import build_edge_tc_tree
    from repro.edgenet.io import load_edge_network
    from repro.obs.trace import Tracer, tracing
    from repro.serve.snapshot import write_snapshot

    network = load_edge_network(args.network)
    tracer = Tracer() if args.trace else None
    with tracing(tracer) if tracer else nullcontext():
        tree = build_edge_tc_tree(
            network,
            max_length=args.max_length,
            workers=args.workers,
            backend=args.backend,
        )
        size = write_snapshot(tree, args.out)
    if tracer is not None:
        tracer.write(args.trace, fmt="chrome")
        print(f"wrote build trace to {args.trace} (chrome://tracing)")
    low = 0.0
    print(
        f"wrote {args.out} (edge snapshot): {tree.num_nodes} trusses, "
        f"{size} bytes, non-trivial alpha range "
        f"[{low}, {tree.max_alpha():.4g})"
    )
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.serve.snapshot import migrate_json_to_snapshot

    json_bytes, snapshot_bytes = migrate_json_to_snapshot(
        args.index, args.out
    )
    print(
        f"wrote {args.out}: {snapshot_bytes} bytes "
        f"(JSON was {json_bytes} bytes, "
        f"x{json_bytes / max(1, snapshot_bytes):.2f})"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.serve.engine import IndexedWarehouse

    pattern = None
    if args.pattern:
        pattern = tuple(int(x) for x in args.pattern.split(","))
    # The engine answers both index formats (binary snapshots lazily,
    # JSON documents from memory) bit-identically to the in-memory tree.
    with IndexedWarehouse.open(args.index) as engine:
        if args.kind != "auto" and engine.kind != args.kind:
            print(
                f"{args.index} serves a {engine.kind} tree, "
                f"not {args.kind}",
                file=sys.stderr,
            )
            return 2
        if args.top_k is not None:
            communities = engine.top_k(
                args.top_k, pattern=pattern, alpha=args.alpha,
                min_size=args.min_size,
            )
            print(
                f"top {len(communities)} theme communities "
                f"(alpha={args.alpha})"
            )
            for community in communities:
                members = ",".join(
                    str(m) for m in sorted(community.members)[:10]
                )
                suffix = "..." if community.size > 10 else ""
                print(
                    f"  pattern={community.pattern} "
                    f"size={community.size}: {members}{suffix}"
                )
            return 0
        answer = engine.query(pattern=pattern, alpha=args.alpha)
    print(
        f"retrieved {answer.retrieved_nodes} trusses "
        f"(visited {answer.visited_nodes} nodes)"
    )
    for truss in answer.trusses[: args.top]:
        print(
            f"  pattern={truss.pattern} |V|={truss.num_vertices} "
            f"|E|={truss.num_edges} communities={len(truss.communities())}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.engine import IndexedWarehouse
    from repro.serve.live import LiveIndex
    from repro.serve.server import create_server

    engine = IndexedWarehouse.open(args.index, cache_size=args.cache_size)
    live = None
    if args.live or args.watch:
        live = LiveIndex(
            engine,
            directory=args.watch,
            compact_threshold=args.compact_every,
        )
        if args.watch:
            live.watch()
    server = create_server(
        engine, host=args.host, port=args.port, verbose=args.verbose,
        live=live,
    )
    host, port = server.server_address[:2]
    endpoints = "/query /top-k /search /stats /healthz /metrics"
    if live is not None:
        endpoints += " /admin/apply-delta"
    print(
        f"serving {args.index} ({engine.backend}, "
        f"{engine.num_indexed_trusses} trusses) "
        f"on http://{host}:{port} — endpoints: " + endpoints,
        flush=True,
    )
    if args.watch:
        print(f"watching {args.watch} for *.tcdelta overlays", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if live is not None:
            live.stop()
        server.server_close()
        engine.close()
    return 0


def _cmd_delta(args: argparse.Namespace) -> int:
    from repro.serve.engine import IndexedWarehouse
    from repro.serve.snapshot import write_delta_snapshot

    with IndexedWarehouse.open(args.base) as base_engine:
        base_tree = base_engine.materialize_tree()
    with IndexedWarehouse.open(args.updated) as updated_engine:
        updated_tree = updated_engine.materialize_tree()
    size = write_delta_snapshot(
        base_tree,
        updated_tree,
        args.out,
        generation=args.generation,
        base_generation=args.base_generation,
    )
    print(
        f"wrote {args.out}: {size} bytes "
        f"(generation {args.base_generation} -> {args.generation})"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.network.validate import has_errors, validate_network

    network = load_network(args.network)
    issues = validate_network(network)
    if not issues:
        print("ok: no issues found")
        return 0
    for issue in issues:
        print(str(issue))
    return 1 if has_errors(issues) else 0


def _find_lint_root(start: str | None) -> Path:
    """Project root for ``repro lint``: the dir holding ``src/repro``."""
    if start is not None:
        return Path(start).resolve()
    current = Path.cwd().resolve()
    for candidate in (current, *current.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    # Installed layout: src/repro/cli.py -> repo root two levels up.
    return Path(__file__).resolve().parents[2]


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis import DEFAULT_BASELINE, run_lint, save_baseline
    from repro.errors import AnalysisError

    root = _find_lint_root(args.root)
    baseline: Path | None = None
    if not args.no_baseline and not args.write_baseline:
        candidate = (
            Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
        )
        if not candidate.is_absolute():
            candidate = root / candidate
        if candidate.is_file():
            baseline = candidate
        elif args.baseline:
            print(f"error: baseline {candidate} not found", file=sys.stderr)
            return 2

    try:
        if args.write_baseline:
            report = run_lint(
                root, paths=args.paths or None, rules=args.rule or None
            )
            target = (
                Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
            )
            if not target.is_absolute():
                target = root / target
            save_baseline(report.findings, target)
            print(f"wrote {target}: {len(report.findings)} baselined findings")
            return 0
        report = run_lint(
            root,
            paths=args.paths or None,
            rules=args.rule or None,
            baseline=baseline,
        )
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        suffix = []
        if report.baselined:
            suffix.append(f"{len(report.baselined)} baselined")
        if report.unused_baseline:
            suffix.append(
                f"{len(report.unused_baseline)} stale baseline entries"
            )
        tail = f" ({', '.join(suffix)})" if suffix else ""
        if report.ok:
            print(f"ok: {report.files} files clean{tail}")
        else:
            print(f"{len(report.findings)} findings{tail}")
    return 0 if report.ok else 1


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.core.tcfi import tcfi
    from repro.search.topk import top_k_communities
    from repro.search.vertex import communities_containing_vertex
    from repro.serve.snapshot import is_snapshot_file

    if is_snapshot_file(args.network) or _is_index_document(args.network):
        return _cmd_search_index(args)
    network = load_network(args.network)
    result = tcfi(network, args.alpha, max_length=args.max_length)
    if args.vertex is not None:
        communities = communities_containing_vertex(result, args.vertex)
        print(
            f"vertex {args.vertex} belongs to {len(communities)} "
            f"theme communities (alpha={args.alpha})"
        )
    else:
        communities = top_k_communities(result, args.top)
        print(f"top {len(communities)} theme communities (alpha={args.alpha})")
    for community in communities[: args.top]:
        theme = ",".join(str(x) for x in community.theme_labels(network))
        print(f"  theme=[{theme}] size={community.size}")
    return 0


def _cmd_search_index(args: argparse.Namespace) -> int:
    """Attributed community search against a built index (engine path)."""
    from repro.serve.engine import IndexedWarehouse

    if not args.vertices or not args.attributes:
        print(
            f"{args.network} is an index file: attributed search needs "
            "--vertices and --attributes (comma-separated ids)",
            file=sys.stderr,
        )
        return 2
    vertices = tuple(int(x) for x in args.vertices.split(","))
    attributes = tuple(int(x) for x in args.attributes.split(","))
    with IndexedWarehouse.open(args.network) as engine:
        matches = engine.search(
            vertices, attributes, alpha=args.alpha, limit=args.top
        )
        print(
            f"{len(matches)} attributed matches "
            f"(vertices={list(vertices)}, attributes={list(attributes)}, "
            f"alpha={args.alpha})"
        )
        for match in matches:
            members = ",".join(
                str(m) for m in sorted(match.community.members)[:10]
            )
            suffix = "..." if match.community.size > 10 else ""
            print(
                f"  pattern={match.pattern} coverage={match.coverage} "
                f"strength={match.strength:.4g} "
                f"size={match.community.size}: {members}{suffix}"
            )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.core.finder import ThemeCommunityFinder
    from repro.export.dot import network_to_dot
    from repro.export.graphml import write_graphml

    network = load_network(args.network)
    communities = None
    if args.alpha is not None:
        communities = ThemeCommunityFinder(network).find_communities(
            alpha=args.alpha, max_length=args.max_length
        )
    if args.format == "graphml":
        write_graphml(network, args.out, communities)
    else:
        highlight = set()
        for community in communities or []:
            highlight |= community.members
        text = network_to_dot(network, highlight=highlight)
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
    print(f"wrote {args.out} ({args.format})")
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import fleet

    config = fleet.load_fleet_config(args.config)
    only = args.only.split(",") if args.only else None
    records = fleet.run_fleet(
        config,
        profile=args.profile,
        only=only,
        force=args.force,
        dry_run=args.dry_run,
        workers=args.workers,
        records_dir=args.records_dir,
        update_config=not args.no_update_config,
    )
    if not args.dry_run:
        print(f"{len(records)} experiment(s) recorded")
    return 0


def _cmd_bench_summarize(args: argparse.Namespace) -> int:
    from repro.bench import fleet

    records = fleet.load_records(args.records_dir)
    if not records:
        print(f"no records in {args.records_dir}", file=sys.stderr)
        return 2
    written = fleet.summarize_records(records, args.out_dir)
    for area, path in sorted(written.items()):
        print(f"{area}: {path}")
    return 0


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    from repro.bench import fleet

    records = fleet.load_records(args.records_dir)
    if not records:
        print(f"no records in {args.records_dir}", file=sys.stderr)
        return 2
    rows, failed = fleet.compare_to_baseline(
        records,
        args.baselines_dir,
        threshold=args.threshold,
        window=args.window,
    )
    markdown = fleet.format_trend_markdown(rows, args.threshold, args.window)
    print(markdown)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(markdown + "\n")
    if failed:
        print(
            f"bench trend gate FAILED (>{(args.threshold - 1) * 100:.0f}% "
            f"regression vs best of last {args.window})",
            file=sys.stderr,
        )
        return 1
    print("bench trend gate passed")
    return 0


def _cmd_bench_tune(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import fleet, tuning

    reports = tuning.tune_cutovers(profile=args.profile)
    lines = [format_table(
        [report.as_row() for report in reports],
        title="Engine cutovers: fitted crossover vs current constant",
    )]
    for report in reports:
        lines.append("")
        lines.append(f"{report.name} sweep ({report.unit}; source: {report.source})")
        lines.append(format_table(report.fit.as_rows()))
        for note in report.notes:
            lines.append(f"  note: {note}")
    text = "\n".join(lines)
    print(text)
    if args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            fleet.stamp_line() + "\n" + text + "\n", encoding="utf-8"
        )
        print(f"report written to {path}")
    if args.apply:
        changed = tuning.apply_fitted_cutovers(reports, Path.cwd())
        for change in changed:
            print(f"applied: {change}")
        if not changed:
            print("no cutover disagreed by more than "
                  f"{tuning.DISAGREEMENT_LIMIT}x; nothing applied")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name == "all":
        for name in sorted(experiments.ALL_EXPERIMENTS):
            print(f"=== {name} ===")
            print(experiments.ALL_EXPERIMENTS[name](args.scale))
            print()
        return 0
    driver = experiments.ALL_EXPERIMENTS.get(args.name)
    if driver is None:
        print(
            f"unknown experiment {args.name!r}; choose from "
            f"{sorted(experiments.ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    print(driver(args.scale))
    return 0


def build_parser() -> argparse.ArgumentParser:
    # Lazy name listing: tree_model_names() reads the registration table
    # without resolving any model factory, so parser construction stays
    # import-light.
    from repro.engine.registry import tree_model_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Theme communities in database networks (Chu et al.)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate an evaluation dataset")
    p.add_argument("--dataset", default="BK")
    p.add_argument("--scale", default="small",
                   choices=("tiny", "small", "medium"))
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("stats", help="print network statistics (Table 2)")
    p.add_argument("network")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("mine", help="find theme communities")
    p.add_argument("network")
    p.add_argument("--alpha", type=float, default=0.0)
    p.add_argument("--method", default="tcfi",
                   choices=("tcfi", "tcfa", "tcs"))
    p.add_argument("--epsilon", type=float, default=0.1)
    p.add_argument("--max-length", type=int, default=None)
    p.add_argument("--top", type=int, default=20)
    p.set_defaults(func=_cmd_mine)

    p = sub.add_parser("index", help="build and save a TC-Tree")
    p.add_argument("network")
    p.add_argument("--out", required=True)
    p.add_argument("--max-length", type=int, default=None)
    p.add_argument("--workers", type=int, default=1,
                   help="parallel build workers (>1 enables the backend)")
    p.add_argument("--backend", default="process",
                   choices=("process", "thread", "serial"),
                   help="parallel backend for --workers > 1; processes "
                        "scale with cores, threads are GIL-bound")
    p.add_argument("--format", default="json",
                   choices=("json", "snapshot"),
                   help="persistence format: json interchange document "
                        "or binary serving snapshot")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a Chrome trace-event JSON of the build's "
                        "span tree (open with chrome://tracing)")
    p.set_defaults(func=_cmd_index)

    p = sub.add_parser(
        "edge-index",
        help="build and save an edge TC-Tree (binary snapshot)",
    )
    p.add_argument("network", help="a repro-edgenetwork JSON document")
    p.add_argument("--out", required=True)
    p.add_argument("--max-length", type=int, default=None)
    p.add_argument("--workers", type=int, default=1,
                   help="parallel build workers (>1 enables the backend)")
    p.add_argument("--backend", default="process",
                   choices=("process", "thread", "serial", "legacy"),
                   help="build backend; 'legacy' is the dict-of-sets "
                        "parity oracle")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write a Chrome trace-event JSON of the build's "
                        "span tree (open with chrome://tracing)")
    p.set_defaults(func=_cmd_edge_index)

    p = sub.add_parser(
        "snapshot", help="migrate a JSON index to a binary snapshot"
    )
    p.add_argument("index", help="a repro-tctree JSON document")
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_snapshot)

    p = sub.add_parser("query", help="query a saved TC-Tree")
    p.add_argument("index",
                   help="binary snapshot or JSON warehouse document")
    p.add_argument("--alpha", type=float, default=0.0)
    p.add_argument("--pattern", default=None,
                   help="comma-separated item ids (default: all items)")
    p.add_argument("--top", type=int, default=20)
    p.add_argument("--top-k", type=int, default=None,
                   help="rank and return only the K best-scoring theme "
                        "communities instead of dumping every truss")
    p.add_argument("--min-size", type=int, default=3,
                   help="smallest community size --top-k may return")
    p.add_argument("--kind", default="auto",
                   choices=("auto", *tree_model_names()),
                   help="require the index to serve this tree model "
                        "(auto-detected from the snapshot header)")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "serve", help="serve a TC-Tree index over HTTP (threaded)"
    )
    p.add_argument("index",
                   help="binary snapshot or JSON warehouse document")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--cache-size", type=int, default=1024,
                   help="decoded-carrier LRU cache capacity, in nodes")
    p.add_argument("--verbose", action="store_true",
                   help="log one line per request to stderr")
    p.add_argument("--live", action="store_true",
                   help="enable the /admin/apply-delta ingestion "
                        "endpoint (hot-swap on overlay deltas)")
    p.add_argument("--watch", default=None, metavar="DIR",
                   help="poll DIR for *.tcdelta overlays and apply "
                        "them in generation order (implies --live; "
                        "compacted snapshots are written there too)")
    p.add_argument("--compact-every", type=int, default=4,
                   help="full-snapshot compaction after this many "
                        "overlay publications (default 4)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "delta",
        help="diff two indexes into an overlay delta snapshot",
    )
    p.add_argument("base", help="the currently served index file")
    p.add_argument("updated", help="the maintained/rebuilt index file")
    p.add_argument("--out", required=True,
                   help="overlay path (conventionally *.tcdelta)")
    p.add_argument("--generation", type=int, required=True,
                   help="generation number the overlay publishes")
    p.add_argument("--base-generation", type=int, default=1,
                   help="generation the overlay applies on top of "
                        "(default 1, a freshly opened index)")
    p.set_defaults(func=_cmd_delta)

    p = sub.add_parser("validate", help="check a network for problems")
    p.add_argument("network")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "search",
        help="community search: by vertex / top-k on a network, "
             "attributed (ATC-style) on an index file",
    )
    p.add_argument("network",
                   help="a network document, or a built index (binary "
                        "snapshot / JSON warehouse) for attributed search")
    p.add_argument("--vertex", type=int, default=None)
    p.add_argument("--alpha", type=float, default=0.0)
    p.add_argument("--max-length", type=int, default=None)
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--vertices", default=None,
                   help="attributed search: comma-separated query "
                        "vertices every community must contain "
                        "(index files only)")
    p.add_argument("--attributes", default=None,
                   help="attributed search: comma-separated query "
                        "attributes the theme may use (index files only)")
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser("export", help="export a network (GraphML / DOT)")
    p.add_argument("network")
    p.add_argument("--format", default="graphml",
                   choices=("graphml", "dot"))
    p.add_argument("--out", required=True)
    p.add_argument("--alpha", type=float, default=None,
                   help="also mine communities and attach memberships")
    p.add_argument("--max-length", type=int, default=None)
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "bench",
        help="benchmark fleet: run / summarize / trend / tune-cutovers",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    b = bench_sub.add_parser(
        "run", help="run the experiments whose run_id is empty"
    )
    b.add_argument("config", help="fleet YAML (e.g. benchmarks/fleet.yaml)")
    b.add_argument("--profile", default="full",
                   help="named workload profile from the config "
                        "(CI uses 'smoke')")
    b.add_argument("--only", default=None,
                   help="comma-separated experiment ids to consider")
    b.add_argument("--force", action="store_true",
                   help="re-run experiments even if their run_id is set")
    b.add_argument("--dry-run", action="store_true",
                   help="list what would run, run nothing")
    b.add_argument("--workers", type=int, default=None,
                   help="parallel experiment processes (default: cores)")
    b.add_argument("--records-dir", default=None,
                   help="where record JSONs go "
                        "(default: <repo>/benchmarks/records)")
    b.add_argument("--no-update-config", action="store_true",
                   help="do not write fresh run_ids back into the YAML")
    b.set_defaults(func=_cmd_bench_run)

    b = bench_sub.add_parser(
        "summarize",
        help="fold records into the BENCH_<area>.json trajectories",
    )
    b.add_argument("--records-dir", default="benchmarks/records")
    b.add_argument("--out-dir", default=".",
                   help="trajectory directory (default: repo root)")
    b.set_defaults(func=_cmd_bench_summarize)

    b = bench_sub.add_parser(
        "trend",
        help="gate fresh records against the committed trajectories",
    )
    b.add_argument("--records-dir", default="benchmarks/records")
    b.add_argument("--baselines-dir", default=".",
                   help="directory holding the BENCH_<area>.json baselines")
    b.add_argument("--threshold", type=float, default=1.25,
                   help="failure ratio vs baseline (1.25 = +25%%)")
    b.add_argument("--window", type=int, default=3,
                   help="baseline = best of the last N trajectory entries")
    b.add_argument("--summary", default=None,
                   help="also append the markdown table to this file "
                        "(CI passes $GITHUB_STEP_SUMMARY)")
    b.set_defaults(func=_cmd_bench_trend)

    b = bench_sub.add_parser(
        "tune-cutovers",
        help="sweep the engine cutover boundaries and fit the crossovers",
    )
    b.add_argument("--profile", default="smoke", choices=("smoke", "full"))
    b.add_argument("--report", default="benchmarks/reports/tune_cutovers.txt",
                   help="stamped report path ('' to skip)")
    b.add_argument("--apply", action="store_true",
                   help="rewrite integer cutover constants whose fit "
                        "disagrees by more than 2x")
    b.set_defaults(func=_cmd_bench_tune)

    p = sub.add_parser(
        "lint",
        help="run the project-invariant static analyzer (repro lint)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/dirs to lint (default: src/repro)")
    p.add_argument("--root", default=None,
                   help="project root (default: auto-detect src/repro)")
    p.add_argument("--format", default="text", choices=("text", "json"))
    p.add_argument("--rule", action="append", default=[],
                   help="run only this rule (repeatable)")
    p.add_argument("--baseline", default=None,
                   help="baseline file (default: .repro-lint-baseline.json "
                        "at the root, when present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any committed baseline")
    p.add_argument("--write-baseline", action="store_true",
                   help="record current findings as the new baseline")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("name")
    p.add_argument("--scale", default="tiny",
                   choices=("tiny", "small", "medium"))
    p.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
