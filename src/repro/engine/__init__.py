"""The engine layer: one registry of workload models over the shared stack.

:mod:`repro.engine.registry` is the single place where a workload
declares how it rides the CSR/serving/fleet machinery — decomposition
entry point, node/tree classes, snapshot payload kind, cutover
constants, parity oracle. Every consumer (the parallel build
orchestrator, the snapshot codec, the CLI, the cutover tuner) resolves
model-specific behaviour through it instead of branching on strings.
"""

from repro.engine.registry import (
    CutoverSpec,
    ModelSpec,
    all_cutovers,
    count_routes,
    get_model,
    model_for_snapshot,
    model_for_tree,
    model_names,
    observed_routes,
    record_route,
    register_model,
    tree_model_names,
    unregister_model,
)

__all__ = [
    "CutoverSpec",
    "ModelSpec",
    "all_cutovers",
    "count_routes",
    "get_model",
    "model_for_snapshot",
    "model_for_tree",
    "model_names",
    "observed_routes",
    "record_route",
    "register_model",
    "tree_model_names",
    "unregister_model",
]
