"""First-class model registry: one :class:`ModelSpec` per workload.

PR 5 folded the edge TC-Tree onto the vertex engine through a private
string-keyed dict in :mod:`repro.index.parallel`; every other layer
still branched on ``"vertex"``/``"edge"`` by hand (snapshot payload
kind, CLI ``--kind`` choices, the tuner's hard-coded constant triple).
This module is the explicit interface those layers now share: a
``ModelSpec`` bundles everything the stack needs to know about one
workload —

- the decomposition entry point and carrier-protocol class (carrier0 /
  route / take_carrier / frontier_carrier / ``__getstate__``
  flattening),
- the node/tree classes plus the build helpers the process-parallel
  orchestrator dispatches through (layer-1 cost proxy, fork-time cache
  warming, the serial parity build),
- the snapshot payload kind — header version/flags and the
  encode/decode/materialize hooks of :mod:`repro.serve.snapshot`,
- the engine cutover constants (:class:`CutoverSpec`) the tuner sweeps,
- the parity oracle backend the fast path is tested against.

Registration is **lazy**: a model registers a zero-argument factory and
the spec is built on first lookup. This keeps the registry importable
from anywhere (it imports nothing from ``repro`` at module level) and
preserves the circular-import discipline the old dict encoded by hand —
``repro.edgenet.index`` calls into the parallel orchestrator, so the
edge spec must not be imported until someone actually asks for it.

Registering a new model::

    from repro.engine import registry

    registry.register_model(
        "mymodel",
        _my_spec_factory,        # () -> ModelSpec
        tree=True,               # appears in CLI --kind, serves snapshots
    )

Worker processes resolve the same names through the same module-level
table (the built-ins register at import), so a model name in the pickled
worker state round-trips on both fork and spawn platforms.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from importlib import import_module
from typing import Callable

from repro.errors import TCIndexError


def resolve_ref(ref: str):
    """Resolve a ``"package.module:attribute"`` dotted reference."""
    module_name, _, attribute = ref.partition(":")
    if not module_name or not attribute:
        raise TCIndexError(
            f"malformed reference {ref!r}; expected 'pkg.mod:attr'"
        )
    return getattr(import_module(module_name), attribute)


@dataclass(frozen=True)
class CutoverSpec:
    """One engine cutover constant a model declares for the tuner.

    ``value_ref``/``value``: where the current value lives — a dotted
    ``"pkg.mod:CONST"`` reference read live (so ``--apply`` rewrites are
    observable after a reimport), or a fixed number for ratios baked
    into arithmetic. ``sweep`` names the timing-sweep function
    (``(points, reps) -> {"x", "slow", "fast"}``); ``applicable`` marks
    whether ``tune-cutovers --apply`` may rewrite ``NAME = <int>`` in
    ``source``.
    """

    name: str
    source: str
    sweep: str
    unit: str = "edges"
    value_ref: str | None = None
    value: float | None = None
    applicable: bool = True

    def current(self) -> float:
        if self.value_ref is not None:
            return float(resolve_ref(self.value_ref))
        if self.value is None:
            raise TCIndexError(
                f"cutover {self.name} declares neither value_ref nor value"
            )
        return float(self.value)

    def sweep_fn(self) -> Callable:
        return resolve_ref(self.sweep)


@dataclass(frozen=True)
class ModelSpec:
    """Everything the stack knows about one registered workload model."""

    name: str
    #: Human wording for stats/reports (``repro stats``, ``/stats``).
    display: str
    description: str = ""
    #: Parity oracle backend the fast path is tested against
    #: (``"legacy"``, ``"serial"``, ``"tree"`` ...).
    oracle: str | None = None
    cutovers: tuple[CutoverSpec, ...] = ()

    # -- tree build API (tree models only) -----------------------------
    decompose: Callable | None = None
    #: The carrier-protocol decomposition class (carrier0/route/
    #: take_carrier/frontier_carrier/__getstate__ flattening).
    decomposition_cls: type | None = None
    node_cls: type | None = None
    make_tree: Callable | None = None
    layer1_costs: Callable | None = None
    warm: Callable | None = None
    serial_build: Callable | None = None

    # -- snapshot payload kind (tree models only) ----------------------
    snapshot_version: int | None = None
    snapshot_flags: int = 0
    #: Bytes one frequency entry costs in the payload (size estimator).
    frequency_entry_bytes: int = 16
    encode_payload: Callable | None = None
    decode_payload: Callable | None = None
    #: ``(snapshot) -> tree`` — decode every node into the in-memory
    #: tree class of this model.
    materialize: Callable | None = None

    # -- workload entry point (non-tree models) ------------------------
    entry: Callable | None = None

    @property
    def is_tree_model(self) -> bool:
        return self.node_cls is not None

    @property
    def has_snapshot(self) -> bool:
        return self.snapshot_version is not None

    def matches_snapshot(self, version: int, flags: int) -> bool:
        """Does a snapshot header ``(version, flags)`` carry this kind?"""
        return (
            self.snapshot_version == version
            and (flags & self.snapshot_flags) == self.snapshot_flags
        )


# ---------------------------------------------------------------------------
# the registry table
# ---------------------------------------------------------------------------

_LOCK = threading.Lock()
_FACTORIES: dict[str, Callable[[], ModelSpec]] = {}  # guarded-by: _LOCK
_SPECS: dict[str, ModelSpec] = {}  # guarded-by: _LOCK
#: Names registered as tree models, in registration order — known without
#: resolving the (lazy, possibly import-heavy) factories, so e.g. the CLI
#: can build its ``--kind`` choices at parser-construction time.
_TREE_NAMES: list[str] = []  # guarded-by: _LOCK


def register_model(
    name: str, factory: Callable[[], ModelSpec], tree: bool = False
) -> None:
    """Register ``factory`` to build the spec of model ``name`` on demand.

    ``tree`` marks TC-Tree models (build orchestration + snapshot kind);
    non-tree workloads (probtruss, attributed search) still declare
    cutovers, oracle, and entry point. Re-registering a name replaces the
    previous registration (latest wins — tests swap models in and out).
    """
    with _LOCK:
        _FACTORIES[name] = factory
        _SPECS.pop(name, None)
        if tree and name not in _TREE_NAMES:
            _TREE_NAMES.append(name)
        if not tree and name in _TREE_NAMES:
            _TREE_NAMES.remove(name)


def unregister_model(name: str) -> None:
    with _LOCK:
        _FACTORIES.pop(name, None)
        _SPECS.pop(name, None)
        if name in _TREE_NAMES:
            _TREE_NAMES.remove(name)


def get_model(name: str) -> ModelSpec:
    """The resolved :class:`ModelSpec` of ``name`` (factory memoized)."""
    with _LOCK:
        spec = _SPECS.get(name)
        if spec is not None:
            return spec
        factory = _FACTORIES.get(name)
    if factory is None:
        raise TCIndexError(
            f"unknown model {name!r} (registered: {', '.join(model_names())})"
        )
    # Build outside the lock: factories import model modules, which may
    # themselves take the lock for lookups of *other* models.
    spec = factory()
    if spec.name != name:
        raise TCIndexError(
            f"model factory for {name!r} built a spec named {spec.name!r}"
        )
    with _LOCK:
        return _SPECS.setdefault(name, spec)


def model_names() -> tuple[str, ...]:
    """Every registered model name, in registration order."""
    with _LOCK:
        return tuple(_FACTORIES)


def tree_model_names() -> tuple[str, ...]:
    """Registered tree-model names (no factory resolution needed)."""
    with _LOCK:
        return tuple(_TREE_NAMES)


def model_for_tree(tree) -> ModelSpec:
    """The spec a built tree dispatches through (by its ``kind`` tag)."""
    return get_model(getattr(tree, "kind", "vertex"))


def model_for_snapshot(version: int, flags: int) -> ModelSpec | None:
    """The tree model whose payload kind a snapshot header declares."""
    for name in tree_model_names():
        spec = get_model(name)
        if spec.has_snapshot and spec.matches_snapshot(version, flags):
            return spec
    return None


def all_cutovers() -> list[tuple[ModelSpec, CutoverSpec]]:
    """Every declared engine cutover, in model registration order."""
    pairs: list[tuple[ModelSpec, CutoverSpec]] = []
    for name in model_names():
        spec = get_model(name)
        pairs.extend((spec, cutover) for cutover in spec.cutovers)
    return pairs


# ---------------------------------------------------------------------------
# route observation
# ---------------------------------------------------------------------------

#: Counter family every model's routing decisions report into, labelled
#: ``{model=..., route=...}`` — e.g. ``route="carrier-projected+csr"``.
#: The tuner (:mod:`repro.bench.tuning`) reads the observed production
#: distribution back through :func:`observed_routes` when judging whether
#: a cutover constant matches the routes a deployment actually takes.
ROUTE_COUNTER = "repro_engine_route_total"

_ROUTE_HELP = (
    "Decomposition/engine route decisions taken, by model and route tag."
)

#: Counter handles for the registry last seen by :func:`record_route`.
#: The call sits on the once-per-decomposition path, and resolving the
#: labelled child through the registry (label-key sort + registry lock)
#: costs ~6× a cached ``Counter.inc``, so the handles are memoized and
#: the whole cache evicted when the default registry changes (e.g. a
#: ``use_registry`` swap) — which also drops any handle into a retired
#: registry. Races are benign: the registry's get-or-create returns the
#: same child to every thread, so a lost cache write only re-resolves.
_route_cache_registry: object | None = None
_route_cache: dict[tuple[str, str], object] = {}


def record_route(model: str, route: str) -> None:
    """Count one routing decision on the default metrics registry."""
    # Imported lazily: the registry must stay importable before the obs
    # package (and keeps its no-repro-imports-at-module-level discipline).
    from repro.obs.metrics import default_registry

    global _route_cache_registry, _route_cache
    registry = default_registry()
    if registry is not _route_cache_registry:
        # Dict first, tag second: a concurrent reader then sees either a
        # stale tag (and re-evicts) or the fresh empty dict — never a
        # fresh tag over stale handles.
        _route_cache = {}
        _route_cache_registry = registry
    counter = _route_cache.get((model, route))
    if counter is None:
        counter = _route_cache[(model, route)] = registry.counter(
            ROUTE_COUNTER, help=_ROUTE_HELP, model=model, route=route
        )
    counter.inc()


def count_routes(model: str, decompose: Callable) -> Callable:
    """Wrap a decompose entry point to count the ``route`` it reports.

    The returned callable is what multi-exit decompose functions (the
    edge engine has seven return sites) publish instead of sprinkling
    counters at every ``return``.
    """
    import functools

    @functools.wraps(decompose)
    def counted(*args, **kwargs):
        decomposition = decompose(*args, **kwargs)
        route = getattr(decomposition, "route", None)
        if route:
            record_route(model, route)
        return decomposition

    return counted


def observed_routes(model: str) -> dict[str, float]:
    """Route tag -> observed count for ``model``, from the default registry."""
    from repro.obs.metrics import default_registry

    routes: dict[str, float] = {}
    for key, value in default_registry().counters(ROUTE_COUNTER).items():
        labels = dict(key)
        if labels.get("model") == model and "route" in labels:
            routes[labels["route"]] = routes.get(labels["route"], 0) + value
    return routes


# ---------------------------------------------------------------------------
# built-in models
# ---------------------------------------------------------------------------


def _vertex_spec() -> ModelSpec:
    from repro.index.decomposition import (
        TrussDecomposition,
        decompose_network_pattern,
    )
    from repro.index.parallel import _layer1_costs, _warm_shared_caches
    from repro.index.tcnode import TCNode
    from repro.index.tctree import TCTree, build_tc_tree
    from repro.serve.snapshot import (
        VERSION,
        _decode_payload,
        _encode_payload,
    )

    return ModelSpec(
        name="vertex",
        display="TC-Tree",
        description="vertex database networks (Chu et al., Algorithm 4)",
        oracle="serial",
        decompose=decompose_network_pattern,
        decomposition_cls=TrussDecomposition,
        node_cls=TCNode,
        make_tree=lambda root, num_items: TCTree(root, num_items=num_items),
        layer1_costs=_layer1_costs,
        warm=_warm_shared_caches,
        serial_build=lambda network, max_length, reuse: build_tc_tree(
            network, max_length=max_length, workers=1, reuse=reuse,
            backend="serial",
        ),
        snapshot_version=VERSION,
        snapshot_flags=0,
        frequency_entry_bytes=16,
        encode_payload=_encode_payload,
        decode_payload=_decode_payload,
        materialize=lambda snapshot: snapshot.materialize().tree,
        cutovers=(
            CutoverSpec(
                name="CSR_MIN_EDGES",
                source="src/repro/graphs/support.py",
                sweep="repro.bench.tuning:sweep_csr_min_edges",
                value_ref="repro.graphs.support:CSR_MIN_EDGES",
            ),
            CutoverSpec(
                name="NET_REUSE_FRACTION",
                source="src/repro/index/decomposition.py "
                       "(_prefer_network_reuse)",
                sweep="repro.bench.tuning:sweep_net_reuse_fraction",
                unit="fraction of net edges",
                # A ratio baked into integer arithmetic — report-only.
                value=0.9,
                applicable=False,
            ),
            CutoverSpec(
                name="MAINT_FULL_REBUILD_FRACTION",
                source="src/repro/index/updates.py",
                sweep="repro.bench.tuning:sweep_maint_full_rebuild_fraction",
                unit="affected fraction of the item universe",
                value_ref="repro.index.updates:MAINT_FULL_REBUILD_FRACTION",
                # A fraction, not a rewritable integer — report-only.
                applicable=False,
            ),
        ),
    )


def _edge_spec() -> ModelSpec:
    from repro.edgenet.decomposition import (
        EdgeTrussDecomposition,
        decompose_edge_network_pattern,
        warm_edge_network_triangles,
    )
    from repro.edgenet.index import (
        EdgeTCNode,
        EdgeTCTree,
        build_edge_tc_tree,
    )
    from repro.serve.snapshot import (
        EDGE_VERSION,
        FLAG_EDGE,
        _decode_edge_payload,
        _encode_edge_payload,
    )

    def edge_warm(network, items) -> None:
        network.csr_graph()
        warm_edge_network_triangles(network, items)

    def edge_costs(network, items) -> dict[int, float]:
        # Pre-layer-1 proxy: the theme network of {s} is exactly the
        # edges whose database mentions s.
        return {
            item: float(len(network.edges_containing_item(item)))
            for item in items
        }

    return ModelSpec(
        name="edge",
        display="Edge TC-Tree",
        description="edge database networks (per-edge frequencies)",
        oracle="legacy",
        decompose=decompose_edge_network_pattern,
        decomposition_cls=EdgeTrussDecomposition,
        node_cls=EdgeTCNode,
        make_tree=lambda root, num_items: EdgeTCTree(
            root, num_items=num_items
        ),
        layer1_costs=edge_costs,
        warm=edge_warm,
        serial_build=lambda network, max_length, reuse: build_edge_tc_tree(
            network, max_length=max_length, workers=1, backend="serial",
            reuse=reuse,
        ),
        snapshot_version=EDGE_VERSION,
        snapshot_flags=FLAG_EDGE,
        frequency_entry_bytes=24,
        encode_payload=_encode_edge_payload,
        decode_payload=_decode_edge_payload,
        materialize=lambda snapshot: snapshot.materialize_edge_tree(),
        cutovers=(
            CutoverSpec(
                name="EDGE_CSR_MIN_EDGES",
                source="src/repro/edgenet/decomposition.py",
                sweep="repro.bench.tuning:sweep_edge_csr_min_edges",
                value_ref="repro.edgenet.decomposition:EDGE_CSR_MIN_EDGES",
            ),
        ),
    )


def _probtruss_spec() -> ModelSpec:
    from repro.graphs.probtruss import probabilistic_k_truss

    return ModelSpec(
        name="probtruss",
        display="probabilistic (k, gamma)-truss",
        description="(k, gamma)-truss peeling on probabilistic graphs",
        oracle="legacy",
        entry=probabilistic_k_truss,
        cutovers=(
            CutoverSpec(
                name="PROB_CSR_MIN_EDGES",
                source="src/repro/graphs/probtruss.py",
                sweep="repro.bench.tuning:sweep_prob_csr_min_edges",
                value_ref="repro.graphs.probtruss:PROB_CSR_MIN_EDGES",
            ),
        ),
    )


def _attributed_spec() -> ModelSpec:
    from repro.search.attributed import attributed_community_search

    return ModelSpec(
        name="attributed",
        display="attributed community search",
        description="ATC-style filtered QBP over a warehouse engine",
        # The in-memory query_tc_tree path is the oracle the
        # snapshot-backed engine path must answer bit-identically to.
        oracle="tree",
        entry=attributed_community_search,
    )


register_model("vertex", _vertex_spec, tree=True)
register_model("edge", _edge_spec, tree=True)
register_model("probtruss", _probtruss_spec)
register_model("attributed", _attributed_spec)


__all__ = [
    "CutoverSpec",
    "ModelSpec",
    "ROUTE_COUNTER",
    "all_cutovers",
    "count_routes",
    "get_model",
    "observed_routes",
    "record_route",
    "model_for_snapshot",
    "model_for_tree",
    "model_names",
    "register_model",
    "resolve_ref",
    "tree_model_names",
    "unregister_model",
]
