"""From-scratch undirected-graph substrate.

The paper's algorithms repeatedly mutate small subgraphs (edge peeling in
MPTD, truss decomposition) and enumerate triangles; this package provides a
lightweight adjacency-set graph tuned for exactly those operations, plus the
classic structures the paper builds on (k-core, k-truss, truss decomposition)
and random-graph generators that replace the JUNG library used in Section 7.
"""

from repro.graphs.components import connected_components, is_connected
from repro.graphs.csr import CSRGraph, as_csr, as_graph, csr_eligible
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    watts_strogatz_graph,
)
from repro.graphs.graph import Graph, edge_key
from repro.graphs.kclique import (
    enumerate_maximal_cliques,
    k_clique_communities,
)
from repro.graphs.kcore import core_numbers, k_core
from repro.graphs.ktruss import k_truss, max_truss_number, truss_numbers
from repro.graphs.probtruss import probabilistic_k_truss
from repro.graphs.traversal import bfs_edges, bfs_order, bfs_vertices
from repro.graphs.triangles import (
    common_neighbors,
    count_triangles,
    edge_triangle_counts,
    enumerate_triangles,
)

__all__ = [
    "Graph",
    "CSRGraph",
    "as_csr",
    "as_graph",
    "csr_eligible",
    "edge_key",
    "connected_components",
    "is_connected",
    "common_neighbors",
    "enumerate_triangles",
    "count_triangles",
    "edge_triangle_counts",
    "bfs_order",
    "bfs_vertices",
    "bfs_edges",
    "core_numbers",
    "k_core",
    "k_truss",
    "truss_numbers",
    "max_truss_number",
    "probabilistic_k_truss",
    "enumerate_maximal_cliques",
    "k_clique_communities",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "powerlaw_cluster_graph",
]
