"""(k, γ)-truss detection on probabilistic graphs (Huang et al., 2016).

The paper's related work (Section 2.1) extends the k-truss to graphs whose
edges exist with a probability. An edge ``e`` is *(k, γ)-qualified* when::

    Pr[e exists]  ×  Pr[support(e) >= k - 2 | e exists]  >=  γ

where ``support(e)`` counts the triangles through ``e``, each triangle
``(u, v, w)`` existing (given ``e = (u, v)``) with probability
``p_uw × p_vw`` under edge independence. The support distribution is a
Poisson-binomial computed by the standard O(d²) dynamic program, and the
(k, γ)-truss is the maximal subgraph of qualified edges, found by the same
peeling skeleton as the deterministic k-truss.

With all probabilities 1 this degenerates to the classic k-truss for any
γ in (0, 1] — a property the test suite verifies against
:func:`repro.graphs.ktruss.k_truss`.

Dense-int graphs route through the shared CSR peeling engine
(:func:`repro.graphs.support.prob_truss_edges` over the cached triangle
index, flat probability arrays instead of dict lookups per common
neighbour); the adjacency-set worklist below remains the small-graph
path and the parity oracle, behind the registered
:data:`PROB_CSR_MIN_EDGES` cutover.
"""

from __future__ import annotations

from repro.engine.registry import record_route
from repro.errors import GraphError
from repro.graphs.csr import as_csr, as_graph
from repro.graphs.graph import Edge, Graph, edge_key
from repro.graphs.support import prob_truss_edges
from repro.graphs.triangles import common_neighbors

EdgeProbability = dict[Edge, float]

#: Below this edge count the legacy dict-of-sets worklist beats the flat
#: engine's fixed costs (CSR conversion + triangle index build) on a
#: one-shot call; the ``engine="auto"`` route falls back to it. Passing
#: a :class:`~repro.graphs.csr.CSRGraph` directly amortizes the cached
#: triangle index across (k, γ) settings, where the engine wins well
#: below this. Registered with the engine layer, so
#: ``repro bench tune-cutovers`` sweeps it like the others.
PROB_CSR_MIN_EDGES = 4096


def support_tail_probability(
    triangle_probabilities: list[float], threshold: int
) -> float:
    """``Pr[#successes >= threshold]`` for independent Bernoulli trials.

    Poisson-binomial tail via the standard DP over trials; O(n·threshold)
    by truncating counts at ``threshold`` (everything at or above the
    threshold is absorbed into one bucket).
    """
    if threshold <= 0:
        return 1.0
    # state[c] = Pr[count == c] for c < threshold; state[threshold] absorbs.
    # Updated in place per trial, descending so state[c-1] is still the
    # previous round's mass when state[c] is written; the float ops are
    # the same multiplies and (commutative) adds as the two-array DP, so
    # results are bit-identical to it.
    state = [0.0] * (threshold + 1)
    state[0] = 1.0
    for p in triangle_probabilities:
        q = 1.0 - p
        state[threshold] += state[threshold - 1] * p
        for count in range(threshold - 1, 0, -1):
            state[count] = state[count] * q + state[count - 1] * p
        state[0] *= q
    return state[threshold]


def edge_qualification(
    graph: Graph,
    probabilities: EdgeProbability,
    u,
    v,
    k: int,
) -> float:
    """``Pr[e exists] × Pr[support >= k - 2 | e exists]`` for one edge."""
    key = edge_key(u, v)
    p_e = probabilities.get(key, 0.0)
    if p_e == 0.0:
        return 0.0
    triangle_probs = []
    for w in common_neighbors(graph, u, v):
        p_uw = probabilities.get(edge_key(u, w), 0.0)
        p_vw = probabilities.get(edge_key(v, w), 0.0)
        triangle_probs.append(p_uw * p_vw)
    return p_e * support_tail_probability(triangle_probs, k - 2)


def probabilistic_k_truss(
    graph: Graph,
    probabilities: EdgeProbability,
    k: int,
    gamma: float,
    engine: str = "auto",
) -> Graph:
    """The maximal (k, γ)-truss of a probabilistic graph.

    Peels edges whose qualification probability drops below ``γ``;
    removing an edge eliminates triangles, so qualification only decreases
    and peeling is confluent, exactly as in the deterministic case.

    ``engine`` selects the peeling backend: ``"auto"`` (CSR fast path on
    int-labeled graphs with at least :data:`PROB_CSR_MIN_EDGES` edges,
    legacy otherwise), ``"csr"``, or ``"legacy"``. Both backends return
    the same truss (peeling is confluent); the parity suite asserts it.
    """
    if k < 2:
        raise GraphError(f"k must be >= 2, got {k}")
    if not 0.0 < gamma <= 1.0:
        raise GraphError(f"gamma must be in (0, 1], got {gamma}")
    if engine not in ("auto", "csr", "legacy"):
        raise GraphError(f"unknown engine {engine!r}")
    if engine == "legacy" or (
        engine == "auto" and graph.num_edges < PROB_CSR_MIN_EDGES
    ):
        record_route("probtruss", "legacy")
        # as_graph: the worklist mutates, so CSR inputs materialize first.
        return _probabilistic_k_truss_legacy(
            as_graph(graph), probabilities, k, gamma
        )
    csr = as_csr(graph)
    if csr is None:
        if engine == "csr":
            raise GraphError(
                "graph is not CSR-eligible (non-int labels)"
            )
        record_route("probtruss", "legacy")
        return _probabilistic_k_truss_legacy(graph, probabilities, k, gamma)
    record_route("probtruss", "csr")
    edge_probs = [
        probabilities.get(csr.edge_label(e), 0.0)
        for e in range(csr.num_edges)
    ]
    result = Graph()
    for e in prob_truss_edges(
        csr, edge_probs, k - 2, gamma, support_tail_probability
    ):
        u, v = csr.edge_label(e)
        result.add_edge(u, v)
    return result


def _probabilistic_k_truss_legacy(
    graph: Graph,
    probabilities: EdgeProbability,
    k: int,
    gamma: float,
) -> Graph:
    """Adjacency-set worklist (small-graph path and parity oracle)."""
    work = graph.copy()

    # Iterate to fixpoint; each pass recomputes qualification for edges
    # whose neighbourhood changed. A worklist keeps passes local.
    pending = set(work.iter_edges())
    while pending:
        edge = pending.pop()
        u, v = edge
        if not work.has_edge(u, v):
            continue
        if edge_qualification(work, probabilities, u, v, k) >= gamma:
            continue
        # Unqualified: remove and re-examine the edges of its triangles.
        for w in common_neighbors(work, u, v):
            pending.add(edge_key(u, w))
            pending.add(edge_key(v, w))
        work.remove_edge(u, v)
    work.discard_isolated_vertices()
    return work
