"""Random-graph generators (JUNG replacement).

Section 7 of the paper generates the SYN network with the Java Universal
Network/Graph Framework. We reimplement the standard models from scratch so
dataset generation is deterministic given a seed and dependency-free.

All generators return :class:`~repro.graphs.graph.Graph` with integer
vertices ``0..n-1`` and accept a ``seed`` for reproducibility.
"""

from __future__ import annotations

import math
import random

from repro.errors import GraphError
from repro.graphs.graph import Graph


def _new_rng(seed: int | None) -> random.Random:
    return random.Random(seed)


def erdos_renyi_graph(n: int, p: float, seed: int | None = None) -> Graph:
    """G(n, p): each of the n-choose-2 edges present independently w.p. ``p``.

    Uses the geometric skipping trick so the cost is proportional to the
    number of generated edges, not to n².
    """
    if n < 0:
        raise GraphError(f"need n >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"need 0 <= p <= 1, got {p}")
    rng = _new_rng(seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    if p == 0.0 or n < 2:
        return graph
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph
    # Iterate over edge slots (v, w) with w < v, skipping geometrically.
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def barabasi_albert_graph(n: int, m: int, seed: int | None = None) -> Graph:
    """Preferential attachment: each new vertex attaches to ``m`` targets.

    Produces the heavy-tailed degree distribution typical of the social
    networks in the paper's evaluation (check-in friendships, co-authorship).
    """
    if m < 1 or m >= n:
        raise GraphError(f"need 1 <= m < n, got m={m}, n={n}")
    rng = _new_rng(seed)
    graph = Graph()
    # Repeated-vertex list: sampling uniformly from it is sampling
    # proportionally to degree.
    repeated: list[int] = []
    targets = list(range(m))
    for v in range(m):
        graph.add_vertex(v)
    for source in range(m, n):
        for t in targets:
            graph.add_edge(source, t)
        repeated.extend(targets)
        repeated.extend([source] * m)
        target_set: set[int] = set()
        while len(target_set) < m:
            target_set.add(rng.choice(repeated))
        targets = list(target_set)
    return graph


def watts_strogatz_graph(
    n: int, k: int, p: float, seed: int | None = None
) -> Graph:
    """Small-world ring lattice with rewiring probability ``p``."""
    if k >= n:
        raise GraphError(f"need k < n, got k={k}, n={n}")
    if k % 2:
        raise GraphError(f"need even k, got {k}")
    rng = _new_rng(seed)
    graph = Graph()
    for v in range(n):
        graph.add_vertex(v)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(v, (v + offset) % n)
    for v in range(n):
        for offset in range(1, k // 2 + 1):
            if rng.random() < p:
                old = (v + offset) % n
                candidates = [
                    w for w in range(n)
                    if w != v and not graph.has_edge(v, w)
                ]
                if candidates and graph.has_edge(v, old):
                    graph.remove_edge(v, old)
                    graph.add_edge(v, rng.choice(candidates))
    return graph


def powerlaw_cluster_graph(
    n: int, m: int, p: float, seed: int | None = None
) -> Graph:
    """Holme–Kim model: preferential attachment plus triangle closure.

    The triangle-closure step matters for this library: pattern trusses are
    built from triangles, so evaluation graphs must contain them in
    abundance, as real social networks do.
    """
    if m < 1 or m >= n:
        raise GraphError(f"need 1 <= m < n, got m={m}, n={n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"need 0 <= p <= 1, got {p}")
    rng = _new_rng(seed)
    graph = Graph()
    repeated: list[int] = []
    for v in range(m):
        graph.add_vertex(v)
    for source in range(m, n):
        chosen: set[int] = set()
        if not repeated:
            chosen = set(range(m))
        else:
            # First link via preferential attachment.
            target = rng.choice(repeated)
            chosen.add(target)
            while len(chosen) < m:
                if rng.random() < p:
                    # Triangle step: link to a neighbor of an existing target.
                    candidates = [
                        w
                        for t in chosen
                        for w in graph.neighbors(t)
                        if w != source and w not in chosen
                    ]
                    if candidates:
                        chosen.add(rng.choice(candidates))
                        continue
                chosen.add(rng.choice(repeated))
        for t in chosen:
            graph.add_edge(source, t)
            repeated.append(t)
        repeated.extend([source] * len(chosen))
    return graph
