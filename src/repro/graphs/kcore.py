"""k-core decomposition (Seidman 1983).

The paper relates pattern trusses to k-cores: a connected maximal pattern
truss with unit frequencies and ``α = k - 3`` is a (k-1)-core (Section 3.2).
We implement the standard linear-time peeling algorithm; it doubles as a test
oracle for that relationship.
"""

from __future__ import annotations

from repro.graphs.graph import Graph, Vertex


def core_numbers(graph: Graph) -> dict[Vertex, int]:
    """Core number of every vertex (max k with v inside the k-core).

    Classic bucket-peeling: repeatedly remove a minimum-degree vertex; the
    core number of a vertex is the degree bound in force when it is removed.
    Runs in O(|V| + |E|).
    """
    degrees = {v: graph.degree(v) for v in graph}
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: list[list[Vertex]] = [[] for _ in range(max_degree + 1)]
    for v, d in degrees.items():
        buckets[d].append(v)

    core: dict[Vertex, int] = {}
    removed: set[Vertex] = set()
    current = 0
    for _ in range(len(degrees)):
        # Find the lowest non-empty bucket at or above 0; lazily skip
        # entries whose degree has since changed.
        while True:
            while current <= max_degree and not buckets[current]:
                current += 1
            v = buckets[current].pop()
            if v not in removed and degrees[v] == current:
                break
        removed.add(v)
        core[v] = current
        for w in graph.neighbors(v):
            if w in removed:
                continue
            d = degrees[w]
            if d > current:
                degrees[w] = d - 1
                buckets[d - 1].append(w)
                if d - 1 < current:
                    current = d - 1
    return core


def k_core(graph: Graph, k: int) -> Graph:
    """The maximal subgraph in which every vertex has degree >= k."""
    core = core_numbers(graph)
    keep = [v for v, c in core.items() if c >= k]
    result = graph.subgraph(keep)
    result.discard_isolated_vertices()
    if k <= 0:
        return graph.copy()
    return result
