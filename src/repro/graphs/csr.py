"""Compressed-sparse-row fast path for the truss/MPTD hot loops.

:class:`CSRGraph` is an immutable int-indexed encoding of an undirected
simple graph: vertices are re-labelled ``0..n-1`` in ascending label order
and the adjacency of the whole graph lives in two flat arrays
(``indptr``/``indices``, the classic CSR layout) built on the stdlib
:mod:`array` module. Each undirected edge additionally carries a canonical
*edge id* ``0..m-1`` shared by both directions (``edge_ids`` parallels
``indices``), which is what lets the peeling engine in
:mod:`repro.graphs.support` replace per-edge dict-of-set surgery with flat
array bookkeeping.

Because labels are sorted ascending, internal-id order *is* label order:
every adjacency row is sorted both by internal id and by label, so
common-neighbour queries and carrier intersections are two-pointer merges
over sorted runs instead of Python set intersections.

The mutable :class:`~repro.graphs.graph.Graph` stays the compatibility
front-end for arbitrary hashable vertices; dense-int graphs (the library
default) are routed through this module by the rewired algorithm entry
points (:mod:`repro.graphs.triangles`, :mod:`repro.graphs.ktruss`,
:mod:`repro.core.mptd`, :mod:`repro.index.decomposition`).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from collections.abc import Hashable, Iterable, Iterator

from repro.errors import GraphError
from repro.graphs.graph import Edge, Graph, Vertex

#: array typecode for vertex/edge indices (signed 64-bit).
INDEX_TYPECODE = "q"


def csr_eligible(graph: Graph) -> bool:
    """True when every vertex is a plain int — the CSR fast-path condition.

    ``bool`` is excluded on purpose: it is an int subclass but signals the
    caller is using the Graph front-end with exotic labels.
    """
    return all(type(v) is int for v in graph)


class CSRGraph:
    """Immutable undirected simple graph in compressed-sparse-row form.

    Attributes (all read-only by convention):

    ``labels``
        Tuple of original vertex labels, sorted ascending; ``labels[i]`` is
        the label of internal vertex ``i``.
    ``indptr`` / ``indices``
        Flat CSR adjacency: the neighbours of internal vertex ``i`` are
        ``indices[indptr[i]:indptr[i+1]]``, sorted ascending.
    ``edge_ids``
        Parallel to ``indices``: the canonical edge id of each adjacency
        slot. Both directions of an edge share one id.
    ``edge_u`` / ``edge_v``
        Endpoint arrays indexed by edge id, with ``edge_u[e] < edge_v[e]``
        (internal ids). Edge ids are assigned in sorted edge order.
    """

    __slots__ = (
        "labels", "indptr", "indices", "edge_ids", "edge_u", "edge_v",
        "_index", "_tri",
    )

    def __init__(
        self,
        labels: tuple[Vertex, ...],
        indptr: array,
        indices: array,
        edge_ids: array,
        edge_u: array,
        edge_v: array,
    ) -> None:
        self.labels = labels
        self.indptr = indptr
        self.indices = indices
        self.edge_ids = edge_ids
        self.edge_u = edge_u
        self.edge_v = edge_v
        self._index = {label: i for i, label in enumerate(labels)}
        #: Cached TriangleIndex (topology-only, so safe to memoize on an
        #: immutable graph) — built lazily by repro.graphs.support.
        self._tri = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        vertices: Iterable[Vertex] | None = None,
    ) -> "CSRGraph":
        """Build from an edge list (plus optional isolated vertices).

        Labels must be mutually sortable (ints in the fast path); a mixed
        unsortable label set raises :class:`GraphError` so callers can fall
        back to the legacy :class:`Graph`.
        """
        label_set: set[Vertex] = set()
        edge_set: set[Edge] = set()
        try:
            for u, v in edges:
                if u == v:
                    raise GraphError(
                        f"self-loop on vertex {u!r} is not allowed"
                    )
                label_set.add(u)
                label_set.add(v)
                edge_set.add((u, v) if u <= v else (v, u))
            if vertices is not None:
                label_set.update(vertices)
            labels = tuple(sorted(label_set))
        except TypeError as exc:
            raise GraphError(
                "CSRGraph requires mutually sortable vertex labels"
            ) from exc
        index = {label: i for i, label in enumerate(labels)}
        # Canonical-by-label pairs map to (iu < iv) internal pairs because
        # the index is monotone in label order.
        internal = sorted((index[u], index[v]) for u, v in edge_set)
        return cls._from_internal(labels, internal)

    @classmethod
    def _from_canonical_edges(
        cls,
        edges: list[Edge],
        vertices: Iterable[Vertex] | None = None,
    ) -> "CSRGraph":
        """Fast constructor: unique canonical pairs already in sorted order.

        The internal fast paths (intersection results, alive-edge carriers,
        subgraph filters) produce exactly this shape, so the dedup +
        re-sort of :meth:`from_edges` can be skipped. Vertices default to
        the edge endpoints only; pass ``vertices`` to keep isolated ones.
        """
        label_set: set[Vertex] = set()
        for u, v in edges:
            label_set.add(u)
            label_set.add(v)
        if vertices is not None:
            label_set.update(vertices)
        labels = tuple(sorted(label_set))
        index = {label: i for i, label in enumerate(labels)}
        internal = [(index[u], index[v]) for u, v in edges]
        return cls._from_internal(labels, internal)

    @classmethod
    def _from_internal(
        cls, labels: tuple[Vertex, ...], internal: list[tuple[int, int]]
    ) -> "CSRGraph":
        """Assemble the flat arrays from sorted internal (iu < iv) pairs."""
        n = len(labels)
        m = len(internal)
        edge_u_list = [0] * m
        edge_v_list = [0] * m
        rows_idx: list[list[int]] = [[] for _ in range(n)]
        rows_eid: list[list[int]] = [[] for _ in range(n)]
        # Appending in globally sorted (iu, iv) order leaves every row
        # sorted: row i first receives its smaller neighbours (from edges
        # (x, i), x ascending) and then its larger ones (from edges
        # (i, y), y ascending). The per-row lists concatenate at C speed.
        for eid, (iu, iv) in enumerate(internal):
            edge_u_list[eid] = iu
            edge_v_list[eid] = iv
            rows_idx[iu].append(iv)
            rows_eid[iu].append(eid)
            rows_idx[iv].append(iu)
            rows_eid[iv].append(eid)
        indptr_list = [0] * (n + 1)
        running = 0
        for i, row in enumerate(rows_idx):
            indptr_list[i] = running
            running += len(row)
        indptr_list[n] = running
        indices = array(INDEX_TYPECODE)
        edge_ids = array(INDEX_TYPECODE)
        for row in rows_idx:
            indices.extend(row)
        for row in rows_eid:
            edge_ids.extend(row)
        return cls(
            labels,
            array(INDEX_TYPECODE, indptr_list),
            indices,
            edge_ids,
            array(INDEX_TYPECODE, edge_u_list),
            array(INDEX_TYPECODE, edge_v_list),
        )

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Convert a legacy :class:`Graph` (isolated vertices preserved)."""
        return cls.from_edges(graph.iter_edges(), vertices=graph.vertices())

    def to_graph(self) -> Graph:
        """Convert back to the mutable front-end :class:`Graph`."""
        graph = Graph()
        for label in self.labels:
            graph.add_vertex(label)
        labels = self.labels
        edge_u = self.edge_u
        edge_v = self.edge_v
        for eid in range(len(edge_u)):
            graph.add_edge(labels[edge_u[eid]], labels[edge_v[eid]])
        return graph

    # ------------------------------------------------------------------
    # queries (label space, Graph-compatible where it matters)
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        return len(self.edge_u)

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._index

    def index_of(self, label: Vertex) -> int:
        """Internal id of ``label``; raises :class:`GraphError` if absent."""
        try:
            return self._index[label]
        except KeyError as exc:
            raise GraphError(f"vertex {label!r} not in graph") from exc

    def degree(self, label: Vertex) -> int:
        i = self.index_of(label)
        return self.indptr[i + 1] - self.indptr[i]

    def neighbors(self, label: Vertex) -> list[Vertex]:
        """Neighbour labels of ``label`` in ascending order (a fresh list)."""
        i = self.index_of(label)
        labels = self.labels
        return [
            labels[j]
            for j in self.indices[self.indptr[i]:self.indptr[i + 1]]
        ]

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return self.edge_id(u, v) >= 0

    def edge_id(self, u: Vertex, v: Vertex) -> int:
        """Canonical edge id of ``{u, v}``, or -1 when absent."""
        iu = self._index.get(u)
        iv = self._index.get(v)
        if iu is None or iv is None:
            return -1
        lo = self.indptr[iu]
        hi = self.indptr[iu + 1]
        pos = bisect_left(self.indices, iv, lo, hi)
        if pos < hi and self.indices[pos] == iv:
            return self.edge_ids[pos]
        return -1

    def edge_label(self, eid: int) -> Edge:
        """The canonical (sorted) label pair of edge ``eid``."""
        return (self.labels[self.edge_u[eid]], self.labels[self.edge_v[eid]])

    def has_isolated_vertices(self) -> bool:
        indptr = self.indptr
        return any(
            indptr[i] == indptr[i + 1] for i in range(len(self.labels))
        )

    def vertices(self) -> list[Vertex]:
        return list(self.labels)

    def edges(self) -> list[Edge]:
        """All edges in canonical form, sorted."""
        return list(self.iter_edges())

    def iter_edges(self) -> Iterator[Edge]:
        labels = self.labels
        edge_u = self.edge_u
        edge_v = self.edge_v
        for eid in range(len(edge_u)):
            yield (labels[edge_u[eid]], labels[edge_v[eid]])

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_edges(
        self, vertices: Iterable[Vertex]
    ) -> tuple[list[Edge], list[Vertex]]:
        """Edges and labels of the vertex-induced subgraph, one pass.

        The edge list keeps canonical sorted order (edge-id order), so it
        feeds :meth:`_from_canonical_edges` — or a legacy ``Graph`` when
        the caller decides the result is too small for the CSR engine.
        """
        index = self._index
        keep_ids = {index[v] for v in vertices if v in index}
        labels = self.labels
        edge_u = self.edge_u
        edge_v = self.edge_v
        kept_edges = [
            (labels[edge_u[eid]], labels[edge_v[eid]])
            for eid in range(len(edge_u))
            if edge_u[eid] in keep_ids and edge_v[eid] in keep_ids
        ]
        return kept_edges, [labels[i] for i in keep_ids]

    def subgraph(self, vertices: Iterable[Vertex]) -> "CSRGraph":
        """Vertex-induced subgraph (isolated selected vertices kept)."""
        index = self._index
        keep_ids = {index[v] for v in vertices if v in index}
        if len(keep_ids) == len(self.labels):
            return self  # immutable, safe to share
        kept_edges, kept_labels = self.induced_edges(
            self.labels[i] for i in keep_ids
        )
        return CSRGraph._from_canonical_edges(kept_edges, vertices=kept_labels)

    def intersect(self, other: "CSRGraph") -> "CSRGraph":
        """Edge intersection in label space via sorted-adjacency merges.

        This is the TCFI/TC-Tree carrier operation ``C*_1 ∩ C*_2``
        (Proposition 5.3). The result contains only the endpoints of
        surviving edges, matching the legacy
        :func:`repro.network.theme.intersect_graphs` contract.
        """
        if self.num_edges > other.num_edges:
            self, other = other, self
        edges: list[Edge] = []
        s_labels = self.labels
        s_indptr = self.indptr
        s_indices = self.indices
        o_labels = other.labels
        o_indptr = other.indptr
        o_indices = other.indices
        o_index = other._index
        for i, label in enumerate(s_labels):
            j = o_index.get(label)
            if j is None:
                continue
            a = s_indptr[i]
            a_hi = s_indptr[i + 1]
            # Each edge once: only neighbours with a larger internal id
            # (equivalently, a larger label) on both sides.
            a = bisect_right(s_indices, i, a, a_hi)
            b = o_indptr[j]
            b_hi = o_indptr[j + 1]
            b = bisect_right(o_indices, j, b, b_hi)
            while a < a_hi and b < b_hi:
                la = s_labels[s_indices[a]]
                lb = o_labels[o_indices[b]]
                if la < lb:
                    a += 1
                elif lb < la:
                    b += 1
                else:
                    edges.append((label, la))
                    a += 1
                    b += 1
        if len(edges) == self.num_edges and not self.has_isolated_vertices():
            return self  # every edge survived; immutable, safe to share
        return CSRGraph._from_canonical_edges(edges)

    # ------------------------------------------------------------------
    # pickling (the process-parallel TC-Tree build ships carriers between
    # processes; see repro.index.parallel)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Ship only the flat arrays: the label index is derivable and the
        cached triangle index can dwarf the graph itself."""
        return (
            self.labels, self.indptr, self.indices, self.edge_ids,
            self.edge_u, self.edge_v,
        )

    def __setstate__(self, state) -> None:
        labels, indptr, indices, edge_ids, edge_u, edge_v = state
        self.labels = labels
        self.indptr = indptr
        self.indices = indices
        self.edge_ids = edge_ids
        self.edge_u = edge_u
        self.edge_v = edge_v
        self._index = {label: i for i, label in enumerate(labels)}
        self._tri = None

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return self.labels == other.labels and self.edges() == other.edges()

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"


GraphLike = Graph | CSRGraph


def as_csr(graph: GraphLike) -> CSRGraph | None:
    """``graph`` as a CSRGraph when the fast path applies, else None.

    CSR inputs pass through untouched; legacy graphs convert only when all
    vertices are plain ints (the dense-int contract of the library).
    """
    if isinstance(graph, CSRGraph):
        return graph
    if csr_eligible(graph):
        return CSRGraph.from_graph(graph)
    return None


def as_graph(graph: GraphLike) -> Graph:
    """``graph`` as a legacy mutable :class:`Graph` (no-op when it is one)."""
    if isinstance(graph, CSRGraph):
        return graph.to_graph()
    return graph
