"""Compressed-sparse-row fast path for the truss/MPTD hot loops.

:class:`CSRGraph` is an immutable int-indexed encoding of an undirected
simple graph: vertices are re-labelled ``0..n-1`` in ascending label order
and the adjacency of the whole graph lives in two flat arrays
(``indptr``/``indices``, the classic CSR layout) built on the stdlib
:mod:`array` module. Each undirected edge additionally carries a canonical
*edge id* ``0..m-1`` shared by both directions (``edge_ids`` parallels
``indices``), which is what lets the peeling engine in
:mod:`repro.graphs.support` replace per-edge dict-of-set surgery with flat
array bookkeeping.

Because labels are sorted ascending, internal-id order *is* label order:
every adjacency row is sorted both by internal id and by label, so
common-neighbour queries and carrier intersections are two-pointer merges
over sorted runs instead of Python set intersections.

The mutable :class:`~repro.graphs.graph.Graph` stays the compatibility
front-end for arbitrary hashable vertices; dense-int graphs (the library
default) are routed through this module by the rewired algorithm entry
points (:mod:`repro.graphs.triangles`, :mod:`repro.graphs.ktruss`,
:mod:`repro.core.mptd`, :mod:`repro.index.decomposition`).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from collections import deque
from collections.abc import Hashable, Iterable, Iterator
from itertools import compress, count, repeat

from repro.errors import GraphError
from repro.graphs.graph import Edge, Graph, Vertex

#: array typecode for vertex/edge indices (signed 64-bit).
INDEX_TYPECODE = "q"


def csr_eligible(graph: Graph) -> bool:
    """True when every vertex is a plain int — the CSR fast-path condition.

    ``bool`` is excluded on purpose: it is an int subclass but signals the
    caller is using the Graph front-end with exotic labels.
    """
    return all(type(v) is int for v in graph)


class CSRGraph:
    """Immutable undirected simple graph in compressed-sparse-row form.

    Attributes (all read-only by convention):

    ``labels``
        Tuple of original vertex labels, sorted ascending; ``labels[i]`` is
        the label of internal vertex ``i``.
    ``indptr`` / ``indices``
        Flat CSR adjacency: the neighbours of internal vertex ``i`` are
        ``indices[indptr[i]:indptr[i+1]]``, sorted ascending.
    ``edge_ids``
        Parallel to ``indices``: the canonical edge id of each adjacency
        slot. Both directions of an edge share one id.
    ``edge_u`` / ``edge_v``
        Endpoint arrays indexed by edge id, with ``edge_u[e] < edge_v[e]``
        (internal ids). Edge ids are assigned in sorted edge order.
    """

    __slots__ = (
        "labels", "indptr", "indices", "edge_ids", "edge_u", "edge_v",
        "_index", "_tri", "_proj_parent", "_proj_eids", "_proj_mask",
        "_proj_vmap", "_proj_emap", "_buffer_owner",
    )

    def __init__(
        self,
        labels: tuple[Vertex, ...],
        indptr: array,
        indices: array,
        edge_ids: array,
        edge_u: array,
        edge_v: array,
    ) -> None:
        self.labels = labels
        self.indptr = indptr
        self.indices = indices
        self.edge_ids = edge_ids
        self.edge_u = edge_u
        self.edge_v = edge_v
        self._index = {label: i for i, label in enumerate(labels)}
        #: Cached TriangleIndex (topology-only, so safe to memoize on an
        #: immutable graph) — built lazily by repro.graphs.support.
        self._tri = None
        #: Projection provenance (:meth:`project`): the graph this one was
        #: edge-filtered from and the parallel edge-id remap table
        #: (``_proj_eids[child eid] = parent eid``). Lets
        #: :func:`repro.graphs.support.triangle_index` *derive* this
        #: graph's triangle index from the parent's cached one instead of
        #: re-enumerating. Never pickled.
        self._proj_parent: "CSRGraph | None" = None
        self._proj_eids: array | None = None
        #: One-shot derivation accelerators stashed by the flat-filter
        #: projection path: the parent-space edge mask and the
        #: parent→child vertex/edge remap tables it already computed.
        #: :func:`repro.graphs.support.derive_triangle_index` consumes
        #: (and clears) them instead of rebuilding. Never pickled.
        self._proj_mask = None
        self._proj_vmap: array | None = None
        self._proj_emap: array | None = None
        #: Keep-alive reference for graphs whose arrays view an external
        #: buffer (a shared-memory store): guarantees the mapping is
        #: finalized only after every graph built from it. Never pickled.
        self._buffer_owner = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        vertices: Iterable[Vertex] | None = None,
    ) -> "CSRGraph":
        """Build from an edge list (plus optional isolated vertices).

        Labels must be mutually sortable (ints in the fast path); a mixed
        unsortable label set raises :class:`GraphError` so callers can fall
        back to the legacy :class:`Graph`.
        """
        label_set: set[Vertex] = set()
        edge_set: set[Edge] = set()
        try:
            for u, v in edges:
                if u == v:
                    raise GraphError(
                        f"self-loop on vertex {u!r} is not allowed"
                    )
                label_set.add(u)
                label_set.add(v)
                edge_set.add((u, v) if u <= v else (v, u))
            if vertices is not None:
                label_set.update(vertices)
            labels = tuple(sorted(label_set))
        except TypeError as exc:
            raise GraphError(
                "CSRGraph requires mutually sortable vertex labels"
            ) from exc
        index = {label: i for i, label in enumerate(labels)}
        # Canonical-by-label pairs map to (iu < iv) internal pairs because
        # the index is monotone in label order.
        internal = sorted((index[u], index[v]) for u, v in edge_set)
        return cls._from_internal(labels, internal)

    @classmethod
    def _from_canonical_edges(
        cls,
        edges: list[Edge],
        vertices: Iterable[Vertex] | None = None,
    ) -> "CSRGraph":
        """Fast constructor: unique canonical pairs already in sorted order.

        The internal fast paths (intersection results, alive-edge carriers,
        subgraph filters) produce exactly this shape, so the dedup +
        re-sort of :meth:`from_edges` can be skipped. Vertices default to
        the edge endpoints only; pass ``vertices`` to keep isolated ones.
        """
        label_set: set[Vertex] = set()
        for u, v in edges:
            label_set.add(u)
            label_set.add(v)
        if vertices is not None:
            label_set.update(vertices)
        labels = tuple(sorted(label_set))
        index = {label: i for i, label in enumerate(labels)}
        internal = [(index[u], index[v]) for u, v in edges]
        return cls._from_internal(labels, internal)

    @classmethod
    def _from_internal(
        cls, labels: tuple[Vertex, ...], internal: list[tuple[int, int]]
    ) -> "CSRGraph":
        """Assemble the flat arrays from sorted internal (iu < iv) pairs."""
        n = len(labels)
        m = len(internal)
        edge_u_list = [0] * m
        edge_v_list = [0] * m
        rows_idx: list[list[int]] = [[] for _ in range(n)]
        rows_eid: list[list[int]] = [[] for _ in range(n)]
        # Appending in globally sorted (iu, iv) order leaves every row
        # sorted: row i first receives its smaller neighbours (from edges
        # (x, i), x ascending) and then its larger ones (from edges
        # (i, y), y ascending). The per-row lists concatenate at C speed.
        for eid, (iu, iv) in enumerate(internal):
            edge_u_list[eid] = iu
            edge_v_list[eid] = iv
            rows_idx[iu].append(iv)
            rows_eid[iu].append(eid)
            rows_idx[iv].append(iu)
            rows_eid[iv].append(eid)
        indptr_list = [0] * (n + 1)
        running = 0
        for i, row in enumerate(rows_idx):
            indptr_list[i] = running
            running += len(row)
        indptr_list[n] = running
        indices = array(INDEX_TYPECODE)
        edge_ids = array(INDEX_TYPECODE)
        for row in rows_idx:
            indices.extend(row)
        for row in rows_eid:
            edge_ids.extend(row)
        return cls(
            labels,
            array(INDEX_TYPECODE, indptr_list),
            indices,
            edge_ids,
            array(INDEX_TYPECODE, edge_u_list),
            array(INDEX_TYPECODE, edge_v_list),
        )

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Convert a legacy :class:`Graph` (isolated vertices preserved)."""
        return cls.from_edges(graph.iter_edges(), vertices=graph.vertices())

    def to_graph(self) -> Graph:
        """Convert back to the mutable front-end :class:`Graph`."""
        graph = Graph()
        for label in self.labels:
            graph.add_vertex(label)
        labels = self.labels
        edge_u = self.edge_u
        edge_v = self.edge_v
        for eid in range(len(edge_u)):
            graph.add_edge(labels[edge_u[eid]], labels[edge_v[eid]])
        return graph

    # ------------------------------------------------------------------
    # queries (label space, Graph-compatible where it matters)
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        return len(self.edge_u)

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.labels)

    def __contains__(self, label: Hashable) -> bool:
        return label in self._index

    def index_of(self, label: Vertex) -> int:
        """Internal id of ``label``; raises :class:`GraphError` if absent."""
        try:
            return self._index[label]
        except KeyError as exc:
            raise GraphError(f"vertex {label!r} not in graph") from exc

    def degree(self, label: Vertex) -> int:
        i = self.index_of(label)
        return self.indptr[i + 1] - self.indptr[i]

    def neighbors(self, label: Vertex) -> list[Vertex]:
        """Neighbour labels of ``label`` in ascending order (a fresh list)."""
        i = self.index_of(label)
        labels = self.labels
        return [
            labels[j]
            for j in self.indices[self.indptr[i]:self.indptr[i + 1]]
        ]

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return self.edge_id(u, v) >= 0

    def edge_id(self, u: Vertex, v: Vertex) -> int:
        """Canonical edge id of ``{u, v}``, or -1 when absent."""
        iu = self._index.get(u)
        iv = self._index.get(v)
        if iu is None or iv is None:
            return -1
        lo = self.indptr[iu]
        hi = self.indptr[iu + 1]
        pos = bisect_left(self.indices, iv, lo, hi)
        if pos < hi and self.indices[pos] == iv:
            return self.edge_ids[pos]
        return -1

    def edge_label(self, eid: int) -> Edge:
        """The canonical (sorted) label pair of edge ``eid``."""
        return (self.labels[self.edge_u[eid]], self.labels[self.edge_v[eid]])

    def has_isolated_vertices(self) -> bool:
        indptr = self.indptr
        return any(
            indptr[i] == indptr[i + 1] for i in range(len(self.labels))
        )

    def vertices(self) -> list[Vertex]:
        return list(self.labels)

    def edges(self) -> list[Edge]:
        """All edges in canonical form, sorted."""
        return list(self.iter_edges())

    def iter_edges(self) -> Iterator[Edge]:
        labels = self.labels
        edge_u = self.edge_u
        edge_v = self.edge_v
        for eid in range(len(edge_u)):
            yield (labels[edge_u[eid]], labels[edge_v[eid]])

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def induced_edges(
        self, vertices: Iterable[Vertex]
    ) -> tuple[list[Edge], list[Vertex]]:
        """Edges and labels of the vertex-induced subgraph, one pass.

        The edge list keeps canonical sorted order (edge-id order), so it
        feeds :meth:`_from_canonical_edges` — or a legacy ``Graph`` when
        the caller decides the result is too small for the CSR engine.
        """
        index = self._index
        keep_ids = {index[v] for v in vertices if v in index}
        labels = self.labels
        edge_u = self.edge_u
        edge_v = self.edge_v
        kept_edges = [
            (labels[edge_u[eid]], labels[edge_v[eid]])
            for eid in range(len(edge_u))
            if edge_u[eid] in keep_ids and edge_v[eid] in keep_ids
        ]
        return kept_edges, [labels[i] for i in keep_ids]

    def subgraph(self, vertices: Iterable[Vertex]) -> "CSRGraph":
        """Vertex-induced subgraph (isolated selected vertices kept)."""
        index = self._index
        keep_ids = {index[v] for v in vertices if v in index}
        if len(keep_ids) == len(self.labels):
            return self  # immutable, safe to share
        kept_edges, kept_labels = self.induced_edges(
            self.labels[i] for i in keep_ids
        )
        return CSRGraph._from_canonical_edges(kept_edges, vertices=kept_labels)

    def project(self, edge_mask) -> "CSRGraph":
        """Edge-filtered copy: keep exactly the edges whose mask slot is
        truthy (``edge_mask`` is indexed by edge id).

        Kept edges stay in canonical (edge-id) order, so the result feeds
        the fast constructor; only endpoints of surviving edges are
        retained, matching the carrier contract of :meth:`intersect`.
        When every edge survives and no vertex is isolated the graph
        itself is returned (immutable, safe to share).

        The result records *projection provenance*: the graph it was
        filtered from plus the edge-id remap table, which lets
        :func:`repro.graphs.support.triangle_index` derive the child's
        triangle index from the parent's cached one instead of
        re-enumerating. Chains compose: projecting a projection whose own
        index was never built points the grandchild directly at the
        nearest ancestor that can supply one, so intermediates are
        released and derivation stays a single filter pass.

        Construction filters the parent's flat arrays directly (compress
        + remap at C speed — the adjacency stays row-sorted because the
        vertex remap is monotone) instead of routing label pairs through
        the generic constructor.
        """
        labels = self.labels
        indptr = self.indptr
        indices = self.indices
        edge_ids = self.edge_ids
        edge_u = self.edge_u
        edge_v = self.edge_v
        n = len(labels)
        m = len(edge_u)
        if not isinstance(edge_mask, (bytes, bytearray)):
            edge_mask = bytearray(map(bool, edge_mask))
        kept = list(compress(range(m), edge_mask))
        if len(kept) == m and not self.has_isolated_vertices():
            return self
        if 4 * len(kept) < m:
            # Sparse survival: the flat-filter path below works in
            # O(parent), the generic constructor in O(child) — for thin
            # intersections (most TC-Tree leaves) the child is tiny.
            child = CSRGraph._from_canonical_edges(
                [(labels[edge_u[e]], labels[edge_v[e]]) for e in kept]
            )
            self._attach_provenance(child, kept)
            return child
        # Vertex survival (edge endpoints only) and monotone remaps —
        # scatter writes dispatched through map (drained by a 0-length
        # deque) so the loops run at C speed.
        drain = deque(maxlen=0)
        vkeep = bytearray(n)
        drain.extend(
            map(vkeep.__setitem__, compress(edge_u, edge_mask), repeat(1))
        )
        drain.extend(
            map(vkeep.__setitem__, compress(edge_v, edge_mask), repeat(1))
        )
        old2new_v = array(INDEX_TYPECODE, [-1]) * n
        drain.extend(
            map(old2new_v.__setitem__, compress(range(n), vkeep), count())
        )
        old2new_e = array(INDEX_TYPECODE, [-1]) * m
        drain.extend(map(old2new_e.__setitem__, kept, count()))
        # Child arrays: kept edges stay in parent edge-id (= canonical)
        # order, every adjacency row is filtered in place.
        gv = old2new_v.__getitem__
        child_edge_u = array(
            INDEX_TYPECODE, map(gv, compress(edge_u, edge_mask))
        )
        child_edge_v = array(
            INDEX_TYPECODE, map(gv, compress(edge_v, edge_mask))
        )
        slot_keep = bytes(map(edge_mask.__getitem__, edge_ids))
        child_indices = array(
            INDEX_TYPECODE, map(gv, compress(indices, slot_keep))
        )
        child_edge_ids = array(
            INDEX_TYPECODE,
            map(old2new_e.__getitem__, compress(edge_ids, slot_keep)),
        )
        n_child = sum(vkeep)
        child_indptr = array(INDEX_TYPECODE, [0]) * (n_child + 1)
        slots = memoryview(slot_keep)
        running = 0
        j = 0
        for x in range(n):
            if vkeep[x]:
                child_indptr[j] = running
                running += sum(slots[indptr[x]:indptr[x + 1]])
                j += 1
        child_indptr[n_child] = running
        child = CSRGraph(
            tuple(compress(labels, vkeep)),
            child_indptr,
            child_indices,
            child_edge_ids,
            child_edge_u,
            child_edge_v,
        )
        if self._attach_provenance(child, kept):
            # The remaps just computed are exactly the tables derivation
            # needs — stash them for one-shot reuse (valid only when the
            # provenance points at self, i.e. the non-composed case).
            child._proj_mask = edge_mask
            child._proj_vmap = old2new_v
            child._proj_emap = old2new_e
        return child

    def _attach_provenance(self, child: "CSRGraph", kept: list[int]) -> bool:
        """Record where ``child`` was projected from.

        Chains compose: when this graph never built its own triangle
        index but is itself a projection, the child points straight at
        the nearest ancestor that can supply one. Returns True when the
        provenance points at ``self`` (remap stashes are then valid).
        """
        if self._tri is None and self._proj_parent is not None:
            parent_eids = self._proj_eids
            child._proj_parent = self._proj_parent
            child._proj_eids = array(
                INDEX_TYPECODE, map(parent_eids.__getitem__, kept)
            )
            return False
        child._proj_parent = self
        child._proj_eids = array(INDEX_TYPECODE, kept)
        return True

    def release_projection(self) -> None:
        """Drop the projection provenance (frees the parent for GC).

        Once a graph's own triangle index is built — or known to be
        unneeded — the back-reference only pins the parent's arrays and
        cached index in memory.
        """
        self._proj_parent = None
        self._proj_eids = None
        self._proj_mask = None
        self._proj_vmap = None
        self._proj_emap = None

    def intersect_mask(
        self, other: "CSRGraph"
    ) -> tuple["CSRGraph", bytearray, int]:
        """Edge-survival mask of ``self ∩ other``.

        Returns ``(base, mask, count)``: the smaller operand, a
        per-edge-id mask of its edges that also exist in the other
        operand, and the number of surviving edges. This is the
        mask-level half of :meth:`intersect` — the TC-Tree frontier uses
        it to defer (or entirely skip) materializing the carrier.
        """
        if self.num_edges > other.num_edges:
            self, other = other, self
        mask = bytearray(self.num_edges)
        count = 0
        s_labels = self.labels
        s_indptr = self.indptr
        s_indices = self.indices
        s_edge_ids = self.edge_ids
        o_labels = other.labels
        o_indptr = other.indptr
        o_indices = other.indices
        o_index = other._index
        for i, label in enumerate(s_labels):
            j = o_index.get(label)
            if j is None:
                continue
            a = s_indptr[i]
            a_hi = s_indptr[i + 1]
            # Each edge once: only neighbours with a larger internal id
            # (equivalently, a larger label) on both sides.
            a = bisect_right(s_indices, i, a, a_hi)
            b = o_indptr[j]
            b_hi = o_indptr[j + 1]
            b = bisect_right(o_indices, j, b, b_hi)
            while a < a_hi and b < b_hi:
                la = s_labels[s_indices[a]]
                lb = o_labels[o_indices[b]]
                if la < lb:
                    a += 1
                elif lb < la:
                    b += 1
                else:
                    mask[s_edge_ids[a]] = 1
                    count += 1
                    a += 1
                    b += 1
        return self, mask, count

    def intersect(self, other: "CSRGraph") -> "CSRGraph":
        """Edge intersection in label space via sorted-adjacency merges.

        This is the TCFI/TC-Tree carrier operation ``C*_1 ∩ C*_2``
        (Proposition 5.3). The result contains only the endpoints of
        surviving edges, matching the legacy
        :func:`repro.network.theme.intersect_graphs` contract. It is
        built as a :meth:`project` of the smaller operand, so the child
        carrier can derive its triangle index from that operand's chain.
        """
        base, mask, _count = self.intersect_mask(other)
        return base.project(mask)

    # ------------------------------------------------------------------
    # pickling (the process-parallel TC-Tree build ships carriers between
    # processes; see repro.index.parallel)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Ship only the flat arrays: the label index is derivable, the
        cached triangle index can dwarf the graph itself, and projection
        provenance would drag the whole ancestor chain across the wire.
        Shared-memory-backed views (:mod:`repro.index.shm`) are copied
        into plain arrays so the payload never references the segment."""
        def plain(values):
            if isinstance(values, array):
                return values
            return array(INDEX_TYPECODE, values)

        return (
            self.labels, plain(self.indptr), plain(self.indices),
            plain(self.edge_ids), plain(self.edge_u), plain(self.edge_v),
        )

    def __setstate__(self, state) -> None:
        labels, indptr, indices, edge_ids, edge_u, edge_v = state
        self.labels = labels
        self.indptr = indptr
        self.indices = indices
        self.edge_ids = edge_ids
        self.edge_u = edge_u
        self.edge_v = edge_v
        self._index = {label: i for i, label in enumerate(labels)}
        self._tri = None
        self._proj_parent = None
        self._proj_eids = None
        self._proj_mask = None
        self._proj_vmap = None
        self._proj_emap = None
        self._buffer_owner = None

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return self.labels == other.labels and self.edges() == other.edges()

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"


GraphLike = Graph | CSRGraph


def as_csr(graph: GraphLike) -> CSRGraph | None:
    """``graph`` as a CSRGraph when the fast path applies, else None.

    CSR inputs pass through untouched; legacy graphs convert only when all
    vertices are plain ints (the dense-int contract of the library).
    """
    if isinstance(graph, CSRGraph):
        return graph
    if csr_eligible(graph):
        return CSRGraph.from_graph(graph)
    return None


def as_graph(graph: GraphLike) -> Graph:
    """``graph`` as a legacy mutable :class:`Graph` (no-op when it is one)."""
    if isinstance(graph, CSRGraph):
        return graph.to_graph()
    return graph
