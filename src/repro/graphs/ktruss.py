"""Classic k-truss detection and truss decomposition.

Cohen (2008) defines the k-truss as the maximal subgraph in which every edge
is supported by at least ``k - 2`` triangles. The paper's pattern truss
generalizes this: with all pattern frequencies equal to 1 and ``α = k - 3``,
a pattern truss *is* a k-truss (Section 3.2). These reference
implementations serve as baselines and as property-test oracles for that
equivalence.

Dense-int graphs route through the CSR engine: one-pass support
computation plus bucket-queue peeling (:mod:`repro.graphs.support`). The
adjacency-set implementations remain as the fallback for arbitrary
hashables and as the parity-test oracle — the legacy decomposition rescans
the support dict for its minimum on every removal, which is ``O(m²)`` and
the reason the fast path exists.
"""

from __future__ import annotations

from collections import deque

from repro.errors import GraphError
from repro.graphs.csr import as_csr
from repro.graphs.graph import Edge, Graph, edge_key
from repro.graphs.support import k_truss_edges, truss_decomposition
from repro.graphs.triangles import (
    _edge_triangle_counts_legacy,
    common_neighbors,
)


def k_truss(graph: Graph, k: int) -> Graph:
    """Return the (maximal) k-truss of ``graph``.

    Iteratively peel edges with support < k - 2, updating the support of the
    other two edges of each destroyed triangle — the same peeling skeleton as
    MPTD (Algorithm 1) with integer support instead of fractional cohesion.
    """
    if k < 2:
        raise GraphError(f"k-truss requires k >= 2, got {k}")
    csr = as_csr(graph)
    if csr is not None:
        result = Graph()
        for eid in k_truss_edges(csr, k):
            u, v = csr.edge_label(eid)
            result.add_edge(u, v)
        return result
    return _k_truss_legacy(graph, k)


def _k_truss_legacy(graph: Graph, k: int) -> Graph:
    """Adjacency-set peeling (fallback and parity oracle)."""
    work = graph.copy()
    support = _edge_triangle_counts_legacy(work)
    threshold = k - 2
    queue: deque[Edge] = deque(
        e for e, s in support.items() if s < threshold
    )
    queued = set(queue)
    while queue:
        u, v = queue.popleft()
        if not work.has_edge(u, v):
            continue
        for w in common_neighbors(work, u, v):
            for other in (edge_key(u, w), edge_key(v, w)):
                support[other] -= 1
                if support[other] < threshold and other not in queued:
                    queued.add(other)
                    queue.append(other)
        work.remove_edge(u, v)
    work.discard_isolated_vertices()
    return work


def truss_numbers(graph: Graph) -> dict[Edge, int]:
    """Truss number of every edge (max k such that the edge is in a k-truss).

    Wang & Cheng (2012) style decomposition: repeatedly remove a minimum-
    support edge; its truss number is ``support + 2`` at removal time,
    clamped to be monotone along the removal sequence.
    """
    csr = as_csr(graph)
    if csr is not None:
        numbers = truss_decomposition(csr)
        return {csr.edge_label(e): t for e, t in enumerate(numbers)}
    return _truss_numbers_legacy(graph)


def _truss_numbers_legacy(graph: Graph) -> dict[Edge, int]:
    """Min-scan decomposition (fallback and parity oracle)."""
    work = graph.copy()
    support = _edge_triangle_counts_legacy(work)
    trussness: dict[Edge, int] = {}
    current_k = 2
    while support:
        edge, min_support = min(support.items(), key=lambda kv: (kv[1], kv[0]))
        current_k = max(current_k, min_support + 2)
        u, v = edge
        for w in common_neighbors(work, u, v):
            for other in (edge_key(u, w), edge_key(v, w)):
                support[other] -= 1
        work.remove_edge(u, v)
        del support[edge]
        trussness[edge] = current_k
    return trussness


def max_truss_number(graph: Graph) -> int:
    """The largest k for which a non-empty k-truss exists (2 if triangle-free)."""
    numbers = truss_numbers(graph)
    return max(numbers.values(), default=2)
