"""Breadth-first traversal helpers.

The paper samples evaluation networks "by performing a breadth first search
from a randomly picked seed vertex" (Section 7.1); the SYN generator also
diffuses transactions along a BFS order. These helpers provide deterministic
BFS orders with a seeded tie-break so every experiment is repeatable.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.graphs.graph import Edge, Graph, Vertex, edge_key


def bfs_order(graph: Graph, start: Vertex) -> list[Vertex]:
    """Vertices reachable from ``start`` in BFS order (sorted tie-break)."""
    return list(bfs_vertices(graph, start))


def bfs_vertices(graph: Graph, start: Vertex) -> Iterator[Vertex]:
    """Yield vertices reachable from ``start`` in BFS order."""
    seen = {start}
    queue = deque([start])
    while queue:
        v = queue.popleft()
        yield v
        for w in sorted(graph.neighbors(v)):
            if w not in seen:
                seen.add(w)
                queue.append(w)


def bfs_edges(graph: Graph, start: Vertex) -> Iterator[Edge]:
    """Yield edges in BFS discovery order from ``start``.

    Every edge of the component is yielded exactly once: tree edges when
    their far endpoint is discovered, cross edges when their second endpoint
    is dequeued. This matches the paper's edge-count-targeted sampling, where
    a sample of *m* edges is the first *m* edges touched by the BFS.
    """
    seen = {start}
    emitted: set[Edge] = set()
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for w in sorted(graph.neighbors(v)):
            key = edge_key(v, w)
            if key not in emitted:
                emitted.add(key)
                yield key
            if w not in seen:
                seen.add(w)
                queue.append(w)
