"""A minimal, mutable, undirected simple graph.

Design goals, in order:

1. Fast triangle work: ``neighbors()`` returns the adjacency *set* itself so
   hot loops can intersect adjacency sets directly.
2. Cheap edge peeling: MPTD and truss decomposition remove edges one at a
   time; ``remove_edge`` is O(1).
3. Value semantics where needed: ``copy()`` and ``subgraph()`` produce
   independent graphs.

Vertices are arbitrary hashable objects (the library uses dense ints).
Self-loops and parallel edges are rejected — the paper's model is a simple
undirected graph.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import GraphError

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


def edge_key(u: Vertex, v: Vertex) -> Edge:
    """Canonical (sorted) form of an undirected edge.

    Using a canonical key lets edge-indexed dicts (cohesion tables, removed
    sets) store each undirected edge exactly once.
    """
    return (u, v) if u <= v else (v, u)


class Graph:
    """Undirected simple graph backed by adjacency sets."""

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (no-op if already present)."""
        self._adj.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add edge ``{u, v}``, creating endpoints as needed.

        Raises :class:`GraphError` on self-loops. Adding an existing edge is
        a no-op, preserving simple-graph semantics.
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        neighbors_u = self._adj.setdefault(u, set())
        self._adj.setdefault(v, set())
        if v not in neighbors_u:
            neighbors_u.add(v)
            self._adj[v].add(u)
            self._num_edges += 1

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove edge ``{u, v}``; raises :class:`GraphError` if absent."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError as exc:
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph") from exc
        self._num_edges -= 1

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex ``v`` and all incident edges."""
        if v not in self._adj:
            raise GraphError(f"vertex {v!r} not in graph")
        for neighbor in self._adj[v]:
            self._adj[neighbor].remove(v)
        self._num_edges -= len(self._adj[v])
        del self._adj[v]

    def discard_isolated_vertices(self) -> None:
        """Drop all degree-0 vertices (used after edge peeling)."""
        isolated = [v for v, nbrs in self._adj.items() if not nbrs]
        for v in isolated:
            del self._adj[v]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        neighbors = self._adj.get(u)
        return neighbors is not None and v in neighbors

    def degree(self, v: Vertex) -> int:
        try:
            return len(self._adj[v])
        except KeyError as exc:
            raise GraphError(f"vertex {v!r} not in graph") from exc

    def neighbors(self, v: Vertex) -> set[Vertex]:
        """The adjacency *set* of ``v`` (not a copy — do not mutate)."""
        try:
            return self._adj[v]
        except KeyError as exc:
            raise GraphError(f"vertex {v!r} not in graph") from exc

    def vertices(self) -> list[Vertex]:
        return list(self._adj)

    def edges(self) -> list[Edge]:
        """All edges in canonical form."""
        return [
            (u, v)
            for u, nbrs in self._adj.items()
            for v in nbrs
            if u <= v
        ]

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate edges in canonical form without materializing a list."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u <= v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        clone = Graph()
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Vertex-induced subgraph (keeps edges with both ends selected)."""
        keep = set(vertices)
        sub = Graph()
        for v in keep:
            if v in self._adj:
                sub.add_vertex(v)
        for u, v in self.iter_edges():
            if u in keep and v in keep:
                sub.add_edge(u, v)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "Graph":
        """Edge-induced subgraph (pattern trusses are edge-induced)."""
        sub = Graph()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
            sub.add_edge(u, v)
        return sub

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"
