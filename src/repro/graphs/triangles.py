"""Triangle enumeration and counting.

Edge cohesion (Definition 3.1) is a sum over the triangles containing an
edge, so the whole mining stack reduces to fast common-neighbor queries.
All helpers here work on the adjacency-set :class:`~repro.graphs.graph.Graph`
and intersect the smaller adjacency set against the larger one, giving the
``O(d(u) + d(v))`` per-edge bound quoted in Section 4.1.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.graph import Edge, Graph, Vertex, edge_key


def common_neighbors(graph: Graph, u: Vertex, v: Vertex) -> set[Vertex]:
    """Vertices forming a triangle with edge ``{u, v}``."""
    nbrs_u = graph.neighbors(u)
    nbrs_v = graph.neighbors(v)
    if len(nbrs_u) > len(nbrs_v):
        nbrs_u, nbrs_v = nbrs_v, nbrs_u
    return {w for w in nbrs_u if w in nbrs_v}


def enumerate_triangles(graph: Graph) -> Iterator[tuple[Vertex, Vertex, Vertex]]:
    """Yield each triangle exactly once as a sorted vertex triple."""
    for u, v in graph.iter_edges():
        for w in common_neighbors(graph, u, v):
            if w > v:
                yield (u, v, w)


def count_triangles(graph: Graph) -> int:
    """Total number of distinct triangles in the graph."""
    return sum(1 for _ in enumerate_triangles(graph))


def edge_triangle_counts(graph: Graph) -> dict[Edge, int]:
    """Number of triangles containing each edge (the k-truss support)."""
    support: dict[Edge, int] = {}
    for u, v in graph.iter_edges():
        support[edge_key(u, v)] = len(common_neighbors(graph, u, v))
    return support
