"""Triangle enumeration and counting.

Edge cohesion (Definition 3.1) is a sum over the triangles containing an
edge, so the whole mining stack reduces to fast common-neighbor queries.
Dense-int graphs are routed through the CSR engine
(:mod:`repro.graphs.support`), which computes every edge's support in one
pass of sorted-adjacency merges; arbitrary-hashable graphs fall back to the
adjacency-set path, intersecting the smaller adjacency set against the
larger one for the ``O(d(u) + d(v))`` per-edge bound of Section 4.1.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graphs.csr import as_csr
from repro.graphs.graph import Edge, Graph, Vertex, edge_key
from repro.graphs.support import edge_supports, triangle_count


def common_neighbors(graph: Graph, u: Vertex, v: Vertex) -> set[Vertex]:
    """Vertices forming a triangle with edge ``{u, v}``."""
    nbrs_u = graph.neighbors(u)
    nbrs_v = graph.neighbors(v)
    if len(nbrs_u) > len(nbrs_v):
        nbrs_u, nbrs_v = nbrs_v, nbrs_u
    return {w for w in nbrs_u if w in nbrs_v}


def enumerate_triangles(graph: Graph) -> Iterator[tuple[Vertex, Vertex, Vertex]]:
    """Yield each triangle exactly once as a sorted vertex triple."""
    for u, v in graph.iter_edges():
        for w in common_neighbors(graph, u, v):
            if w > v:
                yield (u, v, w)


def count_triangles(graph: Graph) -> int:
    """Total number of distinct triangles in the graph."""
    csr = as_csr(graph)
    if csr is not None:
        return triangle_count(csr)
    return sum(1 for _ in enumerate_triangles(graph))


def edge_triangle_counts(graph: Graph) -> dict[Edge, int]:
    """Number of triangles containing each edge (the k-truss support)."""
    csr = as_csr(graph)
    if csr is not None:
        supports = edge_supports(csr)
        return {csr.edge_label(e): s for e, s in enumerate(supports)}
    return _edge_triangle_counts_legacy(graph)


def _edge_triangle_counts_legacy(graph: Graph) -> dict[Edge, int]:
    """Adjacency-set fallback (also the parity-test oracle)."""
    support: dict[Edge, int] = {}
    for u, v in graph.iter_edges():
        support[edge_key(u, v)] = len(common_neighbors(graph, u, v))
    return support
