"""k-clique communities via clique percolation (Palla et al., 2005).

The related-work lineage (Section 2.1) relates the k-truss to k-cliques
(Luce, 1950). Clique-percolation communities are the classic overlapping
structure-only baseline: two k-cliques are adjacent when they share k-1
vertices, and a community is a connected component of the clique-adjacency
graph. Like theme communities — and unlike most partition methods — these
communities may overlap, which is why they make a fair structural baseline
for the overlap analyses in the evaluation.
"""

from __future__ import annotations

from collections import deque

from repro.errors import GraphError
from repro.graphs.graph import Graph, Vertex


def enumerate_maximal_cliques(graph: Graph) -> list[frozenset[Vertex]]:
    """All maximal cliques (Bron-Kerbosch with degeneracy-free pivoting).

    Fine for the evaluation-scale graphs this library targets; the pivot
    rule keeps the branching factor down on social-network-like inputs.
    """
    cliques: list[frozenset[Vertex]] = []

    def expand(r: set, p: set, x: set) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        pivot = max(
            p | x, key=lambda u: len(graph.neighbors(u) & p), default=None
        )
        pivot_neighbors = graph.neighbors(pivot) if pivot is not None else set()
        for v in list(p - pivot_neighbors):
            neighbors = graph.neighbors(v)
            expand(r | {v}, p & neighbors, x & neighbors)
            p.remove(v)
            x.add(v)

    expand(set(), set(graph.vertices()), set())
    return cliques


def k_clique_communities(graph: Graph, k: int) -> list[set[Vertex]]:
    """Overlapping communities by k-clique percolation, largest-first.

    Standard construction: collect k-cliques (as subsets of maximal
    cliques of size >= k), connect two when they share k-1 vertices, and
    union the cliques of each connected component.
    """
    if k < 2:
        raise GraphError(f"k must be >= 2, got {k}")
    from itertools import combinations

    k_cliques: set[frozenset[Vertex]] = set()
    for clique in enumerate_maximal_cliques(graph):
        if len(clique) >= k:
            for combo in combinations(sorted(clique, key=repr), k):
                k_cliques.add(frozenset(combo))
    cliques = sorted(k_cliques, key=sorted)

    # Adjacency via shared (k-1)-subsets: index cliques by each subset.
    by_subset: dict[frozenset, list[int]] = {}
    for index, clique in enumerate(cliques):
        for v in clique:
            by_subset.setdefault(clique - {v}, []).append(index)

    seen: set[int] = set()
    communities: list[set[Vertex]] = []
    for start in range(len(cliques)):
        if start in seen:
            continue
        seen.add(start)
        component = set(cliques[start])
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for v in cliques[current]:
                for neighbor in by_subset.get(cliques[current] - {v}, []):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        component |= cliques[neighbor]
                        queue.append(neighbor)
        communities.append(component)
    communities.sort(key=lambda c: (-len(c), sorted(map(repr, c))))
    return communities
