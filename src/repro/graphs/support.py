"""Edge-support / cohesion peeling engine over :class:`CSRGraph`.

The legacy algorithms recompute common neighbourhoods with Python set
intersections on every peel step and, for full decomposition, rescan the
whole support dict for its minimum on every removal (``O(m²)``). This
module does the triangle work exactly once per graph:

1. :func:`build_triangle_index` enumerates every triangle in one pass and
   records, per canonical edge id, its triangles as flat ``(partner a,
   partner b, triangle id)`` triples. The index depends only on topology,
   so it is cached on the immutable :class:`CSRGraph` — the TC-Tree's
   first layer decomposes every item over the *same* network CSR and pays
   for enumeration once.
2. Peeling an edge then touches only its recorded triangles: a triangle
   contributes iff both partner edges are still alive, so support and
   cohesion maintenance is ``O(#triangles)`` total with zero set surgery.
   Weights (``min(f_u, f_v, f_w)``, Definition 3.1) come from one flat
   pass over the triangle vertex arrays per frequency map.
3. Full decompositions use a bucket queue (integer support, k-truss) or a
   lazy heap (float cohesion, MPTD levels) instead of per-step min scans.

All functions take and return flat structures (lists/bytearrays indexed
by edge id); converting back to label space is the caller's job.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from contextlib import contextmanager
from heapq import heapify, heappop, heappush
from itertools import compress, count, repeat

from repro.graphs.csr import INDEX_TYPECODE, CSRGraph
from repro.obs.metrics import default_registry
from repro.obs.trace import span
from array import array

_TRIANGLE_INDEX_TOTAL = "repro_triangle_index_total"
_TRIANGLE_INDEX_HELP = (
    "Triangle-index builds, by mode (derived from a projection parent "
    "vs enumerated from scratch)."
)

#: Re-exported tolerance — kept numerically identical to the legacy MPTD
#: comparison so the CSR and dict-of-sets paths make the same keep/peel
#: decision at exact-boundary thresholds.
COHESION_TOLERANCE = 1e-9

#: Below this edge count the legacy dict-of-sets algorithms beat the flat
#: engine's fixed costs (CSR conversion, triangle index, heap); the
#: auto-routing entry points fall back to the adjacency-set path. Passing
#: a :class:`CSRGraph` explicitly always uses the engine.
CSR_MIN_EDGES = 512


class TriangleIndex:
    """Flat triangle tables of a CSR graph (topology only, no weights).

    ``tri_u/tri_v/tri_w`` hold the vertex triple (internal ids,
    ``u < v < w``) of each triangle; ``tri_e1/tri_e2/tri_e3`` the edge ids
    of ``(u,v)``, ``(u,w)``, ``(v,w)``. ``edge_tris[e]`` flattens the
    triangles of edge ``e`` as ``[a0, b0, t0, a1, b1, t1, ...]`` —
    partner edge ids plus the triangle id (for weight lookup).

    Triangles are listed in ascending ``(e1, w)`` order — edges in
    canonical id order, third vertices ascending within an edge. The
    order is load-bearing: per-edge cohesions are float sums accumulated
    in triangle order, and :func:`derive_triangle_index` relies on mask
    filtering preserving exactly this order so a derived index is
    *element-identical* to a fresh enumeration of the same subgraph.

    ``source`` records how the tables were built: ``"enumerated"`` (full
    adjacency-merge enumeration) or ``"derived"`` (filtered from a
    projection parent's cached index).
    """

    __slots__ = (
        "tri_u", "tri_v", "tri_w", "tri_e1", "tri_e2", "tri_e3",
        "edge_tris", "source",
    )

    def __init__(self, csr: CSRGraph) -> None:
        indptr = csr.indptr
        indices = csr.indices
        edge_ids = csr.edge_ids
        edge_u = csr.edge_u
        edge_v = csr.edge_v
        m = csr.num_edges
        tri_u: list[int] = []
        tri_v: list[int] = []
        tri_w: list[int] = []
        tri_e1: list[int] = []
        tri_e2: list[int] = []
        tri_e3: list[int] = []
        edge_tris: list[list[int]] = [[] for _ in range(m)]
        t = 0
        for e in range(m):
            u = edge_u[e]
            v = edge_v[e]
            # Merge the sorted ``> v`` suffixes of both adjacency rows:
            # every common neighbour w yields triangle u < v < w exactly
            # once, in ascending w, with both partner edge ids read off
            # the parallel edge_ids slots — no sets, no dicts.
            a_hi = indptr[u + 1]
            a = bisect_right(indices, v, indptr[u], a_hi)
            b_hi = indptr[v + 1]
            b = bisect_right(indices, v, indptr[v], b_hi)
            while a < a_hi and b < b_hi:
                wa = indices[a]
                wb = indices[b]
                if wa < wb:
                    a += 1
                elif wa > wb:
                    b += 1
                else:
                    e_uw = edge_ids[a]
                    e_vw = edge_ids[b]
                    tri_u.append(u)
                    tri_v.append(v)
                    tri_w.append(wa)
                    tri_e1.append(e)
                    tri_e2.append(e_uw)
                    tri_e3.append(e_vw)
                    lst = edge_tris[e]
                    lst.append(e_uw)
                    lst.append(e_vw)
                    lst.append(t)
                    lst = edge_tris[e_uw]
                    lst.append(e)
                    lst.append(e_vw)
                    lst.append(t)
                    lst = edge_tris[e_vw]
                    lst.append(e)
                    lst.append(e_uw)
                    lst.append(t)
                    t += 1
                    a += 1
                    b += 1
        self.tri_u = tri_u
        self.tri_v = tri_v
        self.tri_w = tri_w
        self.tri_e1 = tri_e1
        self.tri_e2 = tri_e2
        self.tri_e3 = tri_e3
        self.edge_tris = edge_tris
        self.source = "enumerated"

    @classmethod
    def _derived(
        cls,
        parent: "TriangleIndex",
        child: CSRGraph,
        old2new_e,
        old2new_v,
        survival: bytes,
    ) -> "TriangleIndex":
        """Filter-and-remap construction from a projection parent's index.

        ``survival`` flags (per parent triangle) whether all three edges
        survive in ``child``; ``old2new_e``/``old2new_v`` map parent edge
        and vertex ids to child ids. Filtering preserves the canonical
        ``(e1, w)`` order because the projection's edge-id remap is
        monotone, so the result equals a fresh enumeration of ``child``
        element for element.
        """
        self = cls.__new__(cls)
        ge = old2new_e.__getitem__
        gv = old2new_v.__getitem__
        self.tri_u = list(map(gv, compress(parent.tri_u, survival)))
        self.tri_v = list(map(gv, compress(parent.tri_v, survival)))
        self.tri_w = list(map(gv, compress(parent.tri_w, survival)))
        tri_e1 = list(map(ge, compress(parent.tri_e1, survival)))
        tri_e2 = list(map(ge, compress(parent.tri_e2, survival)))
        tri_e3 = list(map(ge, compress(parent.tri_e3, survival)))
        self.tri_e1 = tri_e1
        self.tri_e2 = tri_e2
        self.tri_e3 = tri_e3
        edge_tris: list[list[int]] = [[] for _ in range(child.num_edges)]
        t = 0
        for e, e_uw, e_vw in zip(tri_e1, tri_e2, tri_e3):
            edge_tris[e] += (e_uw, e_vw, t)
            edge_tris[e_uw] += (e, e_vw, t)
            edge_tris[e_vw] += (e, e_uw, t)
            t += 1
        self.edge_tris = edge_tris
        self.source = "derived"
        return self

    @property
    def num_triangles(self) -> int:
        return len(self.tri_u)


#: Module switch for the carrier-projection fast path. When off,
#: :func:`triangle_index` always re-enumerates — the parity oracle the
#: property suite compares against (and the pre-projection behaviour).
_PROJECTION_ENABLED = True


def projection_enabled() -> bool:
    """Whether derived (projected) triangle indexes are in use."""
    return _PROJECTION_ENABLED


def set_projection_enabled(enabled: bool) -> bool:
    """Set the projection switch; returns the previous value."""
    global _PROJECTION_ENABLED
    previous = _PROJECTION_ENABLED
    _PROJECTION_ENABLED = bool(enabled)
    return previous


@contextmanager
def projection(enabled: bool):
    """Scoped projection switch (the benches/tests A/B toggle)."""
    previous = set_projection_enabled(enabled)
    try:
        yield
    finally:
        set_projection_enabled(previous)


def derivable(csr: CSRGraph) -> bool:
    """True when a projection of ``csr`` could derive its triangle index
    (``csr`` itself, or the parent it projects from, holds a cached one).
    Cutover heuristics use this: without a warm ancestor index the
    projected path would have to re-enumerate anyway.
    """
    if csr._tri is not None:
        return True
    parent = csr._proj_parent
    return parent is not None and parent._tri is not None


def derive_triangle_index(csr: CSRGraph) -> TriangleIndex | None:
    """The triangle index of a projected graph, derived from its parent.

    Returns None when ``csr`` has no projection provenance or the parent
    never built an index (deriving would then cost a full parent
    enumeration first — worse than enumerating the child directly).

    A child triangle is exactly a parent triangle whose three edges all
    survive the projection, so derivation is one C-speed survival filter
    over the parent's flat tables (byte maps + big-int AND) followed by a
    remap of the surviving rows.
    """
    base = csr._proj_parent
    if base is None:
        return None
    parent_tri = base._tri
    if parent_tri is None:
        return None
    if (
        csr._proj_emap is not None
        and csr._proj_vmap is not None
        and csr._proj_mask is not None
    ):
        # One-shot reuse of the tables the projection itself computed.
        old2new_e = csr._proj_emap
        old2new_v = csr._proj_vmap
        alive = csr._proj_mask
        csr._proj_emap = None
        csr._proj_vmap = None
        csr._proj_mask = None
    else:
        proj_eids = csr._proj_eids
        drain = deque(maxlen=0)
        old2new_e = array(INDEX_TYPECODE, [-1]) * base.num_edges
        drain.extend(map(old2new_e.__setitem__, proj_eids, count()))
        alive = bytearray(base.num_edges)
        drain.extend(map(alive.__setitem__, proj_eids, repeat(1)))
        old2new_v = array(INDEX_TYPECODE, [-1]) * base.num_vertices
        drain.extend(
            map(
                old2new_v.__setitem__,
                map(base._index.__getitem__, csr.labels),
                count(),
            )
        )
    num_tris = parent_tri.num_triangles
    if num_tris == 0:
        survival = b""
    else:
        keep = alive.__getitem__
        survival = (
            int.from_bytes(bytes(map(keep, parent_tri.tri_e1)), "little")
            & int.from_bytes(bytes(map(keep, parent_tri.tri_e2)), "little")
            & int.from_bytes(bytes(map(keep, parent_tri.tri_e3)), "little")
        ).to_bytes(num_tris, "little")
    return TriangleIndex._derived(
        parent_tri, csr, old2new_e, old2new_v, survival
    )


def triangle_index(csr: CSRGraph) -> TriangleIndex:
    """The (cached) triangle index of ``csr`` — built on first use.

    A projected graph (see :meth:`CSRGraph.project`) whose parent holds a
    cached index derives its own by intersection-filtering instead of
    re-enumerating, unless the projection switch is off.
    """
    tri = csr._tri
    if tri is None:
        if _PROJECTION_ENABLED:
            with span("triangles.derive", edges=csr.num_edges) as sp:
                tri = derive_triangle_index(csr)
                sp.set_attr("derived", tri is not None)
        mode = "derived"
        if tri is None:
            mode = "enumerated"
            with span("triangles.enumerate", edges=csr.num_edges):
                tri = TriangleIndex(csr)
        default_registry().counter(
            _TRIANGLE_INDEX_TOTAL, help=_TRIANGLE_INDEX_HELP, mode=mode
        ).inc()
        csr._tri = tri
        # With its own index cached the graph no longer needs the
        # ancestor chain — children now derive from *this* graph, and
        # keeping the back-reference would pin the ancestor's arrays and
        # (potentially huge) triangle index for this graph's lifetime.
        csr.release_projection()
    return tri


def edge_supports(csr: CSRGraph) -> list[int]:
    """Triangle count (k-truss support) of every edge."""
    return [len(lst) // 3 for lst in triangle_index(csr).edge_tris]


def triangle_count(csr: CSRGraph) -> int:
    """Total number of triangles, in constant extra memory.

    Uses the cached triangle index when one is already built; otherwise
    counts via sorted-adjacency merges without materializing anything —
    a scalar statistic should not pay the index's O(#triangles) storage.
    """
    tri = csr._tri
    if tri is not None:
        return tri.num_triangles
    indptr = csr.indptr
    indices = csr.indices
    total = 0
    for u in range(csr.num_vertices):
        lo = indptr[u]
        hi = indptr[u + 1]
        start = bisect_right(indices, u, lo, hi)
        for p in range(start, hi):
            v = indices[p]
            # Merge the rows of u and v for common neighbours w > v, so
            # each triangle u < v < w is counted exactly once.
            a = bisect_right(indices, v, p, hi)
            b_lo = indptr[v]
            b_hi = indptr[v + 1]
            b = bisect_right(indices, v, b_lo, b_hi)
            while a < hi and b < b_hi:
                wa = indices[a]
                wb = indices[b]
                if wa < wb:
                    a += 1
                elif wa > wb:
                    b += 1
                else:
                    total += 1
                    a += 1
                    b += 1
    return total


def cohesion_values(
    csr: CSRGraph, frequencies: list[float]
) -> tuple[list[float], list[float]]:
    """Phase 1 of Algorithm 1: per-triangle weights and per-edge cohesion.

    One flat pass over the triangle tables; ``frequencies`` is indexed by
    internal vertex id.
    """
    tri = triangle_index(csr)
    get = frequencies.__getitem__
    # min() dispatched by map over three C-speed lookup streams.
    weights = list(
        map(
            min,
            map(get, tri.tri_u),
            map(get, tri.tri_v),
            map(get, tri.tri_w),
        )
    )
    return weights, _accumulate_cohesion(csr, tri, weights)


def edge_frequency_list(csr: CSRGraph, edge_frequencies) -> list[float]:
    """Per-edge-id frequency array from a canonical-label-pair map.

    The edge engine's Phase-1 input: slot ``e`` holds the frequency of
    the canonical label pair of edge ``e`` (0.0 when unmapped). Shared by
    every route of the edge decomposition so the array layout — and with
    it the float summation order — never forks per call site.
    """
    labels = csr.labels
    get = edge_frequencies.get
    return [
        get((labels[u], labels[v]), 0.0)
        for u, v in zip(csr.edge_u, csr.edge_v)
    ]


def edge_cohesion_values(
    csr: CSRGraph, edge_frequencies: list[float]
) -> tuple[list[float], list[float]]:
    """Per-triangle weights and per-edge cohesion under per-*edge*
    frequencies (edge theme networks): a triangle weighs the minimum
    frequency of its three edges. ``edge_frequencies`` is indexed by
    canonical edge id. One flat pass, mirroring :func:`cohesion_values`.
    """
    tri = triangle_index(csr)
    get = edge_frequencies.__getitem__
    weights = list(
        map(
            min,
            map(get, tri.tri_e1),
            map(get, tri.tri_e2),
            map(get, tri.tri_e3),
        )
    )
    return weights, _accumulate_cohesion(csr, tri, weights)


def _accumulate_cohesion(
    csr: CSRGraph, tri: TriangleIndex, weights: list[float]
) -> list[float]:
    """Per-edge cohesion from per-triangle weights — shared by the vertex
    and edge engines. Weights are added in triangle-id order, the
    per-edge summation order the bit-identical parity contract depends
    on; keep both engines on this one loop.
    """
    cohesion = [0.0] * csr.num_edges
    for f, e1, e2, e3 in zip(weights, tri.tri_e1, tri.tri_e2, tri.tri_e3):
        cohesion[e1] += f
        cohesion[e2] += f
        cohesion[e3] += f
    return cohesion


def peel_cohesion(
    csr: CSRGraph,
    weights: list[float],
    cohesion: list[float],
    alpha: float,
    alive: bytearray,
    removed_sink: list[int] | None = None,
) -> None:
    """Peel every alive edge with cohesion ``<= alpha`` (plus tolerance).

    Phase 2 of Algorithm 1: FIFO cascade over the triangle index. A
    triangle is destroyed exactly once — when its first edge dies —
    because later removals see a dead partner.
    """
    edge_tris = triangle_index(csr).edge_tris
    bound = alpha + COHESION_TOLERANCE
    m = len(cohesion)
    # Seed scan at C speed: float compares via map, ids via compress.
    # Dead seeds are harmless — the pop loop re-checks ``alive``.
    queue: deque[int] = deque(
        compress(count(), map(bound.__ge__, cohesion))
    )
    queued = bytearray(m)
    deque(map(queued.__setitem__, queue, repeat(1)), maxlen=0)
    while queue:
        e = queue.popleft()
        if not alive[e]:
            continue
        alive[e] = 0
        it = iter(edge_tris[e])
        for a, b, t in zip(it, it, it):
            if alive[a] and alive[b]:
                w = weights[t]
                new_value = cohesion[a] - w
                cohesion[a] = new_value
                if new_value <= bound and not queued[a]:
                    queued[a] = 1
                    queue.append(a)
                new_value = cohesion[b] - w
                cohesion[b] = new_value
                if new_value <= bound and not queued[b]:
                    queued[b] = 1
                    queue.append(b)
        if removed_sink is not None:
            removed_sink.append(e)


def decompose_cohesion(
    csr: CSRGraph,
    frequencies: list[float],
) -> tuple[bytearray, list[tuple[float, list[int]]]]:
    """Full cohesion decomposition of a theme network (Theorem 6.1).

    Runs Phase 1, the α = 0 peel (whose removals belong to no level), and
    the iterated threshold peeling that yields the decomposition levels.
    Returns ``(alive, levels)`` where ``alive`` flags the edges of
    ``C*_p(0)`` (the carrier) and ``levels`` is the ascending list of
    ``(β, removed edge ids)``.

    Two structural improvements over the legacy dict-of-sets loop:

    - level minima come off a single lazy heap instead of a full
      ``min(cohesion.values())`` + peel rescan of every edge per level;
    - all triangle work is O(1) lookups into the cached triangle index —
      no common-neighbour recomputation per removal, and repeated
      decompositions over one CSR graph (the TC-Tree first layer) share
      the enumeration.
    """
    weights, cohesion = cohesion_values(csr, frequencies)
    return _decompose_from_cohesion(csr, weights, cohesion)


def decompose_cohesion_edges(
    csr: CSRGraph,
    edge_frequencies: list[float],
) -> tuple[bytearray, list[tuple[float, list[int]]]]:
    """Full cohesion decomposition under per-*edge* frequencies.

    The edge theme network analogue of :func:`decompose_cohesion`
    (Theorem 6.1 carries over verbatim — cohesion is still a sum of
    per-triangle minima); only Phase 1 differs.
    """
    weights, cohesion = edge_cohesion_values(csr, edge_frequencies)
    return _decompose_from_cohesion(csr, weights, cohesion)


def _decompose_from_cohesion(
    csr: CSRGraph,
    weights: list[float],
    cohesion: list[float],
) -> tuple[bytearray, list[tuple[float, list[int]]]]:
    """The α = 0 peel plus iterated threshold peeling, weight-agnostic."""
    m = csr.num_edges
    edge_tris = triangle_index(csr).edge_tris
    alive = bytearray(b"\x01") * m

    # α = 0 peel: its removals belong to no level (MPTD Phase 2).
    removed0: list[int] = []
    peel_cohesion(csr, weights, cohesion, 0.0, alive, removed_sink=removed0)
    remaining = m - len(removed0)

    # Snapshot C*_p(0) before the level rounds consume the alive set.
    carrier_alive = bytearray(alive)

    # Iterated threshold peeling off one lazy heap: each round reads the
    # minimum alive cohesion β, then keeps popping while the minimum stays
    # ``<= β`` (plus tolerance). Edges dragged to ``<= bound`` mid-round
    # are pushed immediately so they fall in the same round; edges
    # decremented but still above the bound only need a current entry by
    # the *next* round's β-scan, so they are batched in a per-round
    # ``touched`` set and pushed once at round end — one push per touched
    # edge per round instead of one per triangle destruction. Stale
    # entries (dead edge, or stored value no longer current) are skipped
    # on pop.
    heap = list(compress(zip(cohesion, count()), alive))
    heapify(heap)
    push = heappush
    pop = heappop
    levels: list[tuple[float, list[int]]] = []
    while remaining:
        while heap:
            value, e = heap[0]
            if alive[e] and value == cohesion[e]:
                break
            pop(heap)
        beta = heap[0][0]
        bound = beta + COHESION_TOLERANCE
        removed: list[int] = []
        touched: set[int] = set()
        while heap and heap[0][0] <= bound:
            value, e = pop(heap)
            if not alive[e] or value != cohesion[e]:
                continue
            alive[e] = 0
            remaining -= 1
            removed.append(e)
            it = iter(edge_tris[e])
            for a, b, t in zip(it, it, it):
                if alive[a] and alive[b]:
                    w = weights[t]
                    new_value = cohesion[a] - w
                    cohesion[a] = new_value
                    if new_value <= bound:
                        push(heap, (new_value, a))
                    else:
                        touched.add(a)
                    new_value = cohesion[b] - w
                    cohesion[b] = new_value
                    if new_value <= bound:
                        push(heap, (new_value, b))
                    else:
                        touched.add(b)
        for e in touched:
            if alive[e]:
                push(heap, (cohesion[e], e))
        levels.append((beta, removed))
    return carrier_alive, levels


def peel_support(
    csr: CSRGraph,
    support: list[int],
    threshold: int,
    alive: bytearray,
) -> None:
    """Peel every edge whose support is below ``threshold``, in place.

    ``support`` always equals the number of *alive* triangles of each
    alive edge.
    """
    edge_tris = triangle_index(csr).edge_tris
    m = len(support)
    queue: deque[int] = deque()
    queued = bytearray(m)
    for e in range(m):
        if alive[e] and support[e] < threshold:
            queued[e] = 1
            queue.append(e)
    while queue:
        e = queue.popleft()
        if not alive[e]:
            continue
        alive[e] = 0
        lst = edge_tris[e]
        for k in range(0, len(lst), 3):
            a = lst[k]
            b = lst[k + 1]
            if alive[a] and alive[b]:
                support[a] -= 1
                if support[a] < threshold and not queued[a]:
                    queued[a] = 1
                    queue.append(a)
                support[b] -= 1
                if support[b] < threshold and not queued[b]:
                    queued[b] = 1
                    queue.append(b)


def k_truss_edges(csr: CSRGraph, k: int) -> list[int]:
    """Edge ids of the maximal k-truss of ``csr``."""
    support = edge_supports(csr)
    alive = bytearray(b"\x01") * len(support)
    peel_support(csr, support, k - 2, alive)
    return [e for e in range(len(support)) if alive[e]]


def prob_truss_edges(
    csr: CSRGraph,
    edge_probs: list[float],
    threshold: int,
    gamma: float,
    tail,
) -> list[int]:
    """Edge ids of the maximal (k, γ)-truss under edge probabilities.

    The probabilistic analogue of :func:`k_truss_edges`, on the same
    cached triangle index and FIFO worklist skeleton: an edge survives
    when ``p_e × tail(alive triangle probabilities, threshold) >= γ``,
    where each alive triangle of ``e`` contributes the product of its
    two partner-edge probabilities. ``tail`` is the Poisson-binomial
    tail DP (injected by :mod:`repro.graphs.probtruss`, which owns the
    distribution math); ``edge_probs`` is indexed by canonical edge id.

    Removing an edge only destroys triangles, so qualification only
    decreases and peeling is confluent — the surviving edge set is
    order-independent, which is what makes the legacy dict-of-sets
    worklist an exact parity oracle for this routine.

    A surviving edge needs a non-zero tail, i.e. at least ``threshold``
    alive triangles — so the (k, γ)-truss is a subgraph of the
    deterministic k-truss. The integer support peel therefore runs
    first, and the Poisson-binomial DP only ever touches the
    deterministic core instead of every edge of the graph.
    """
    m = csr.num_edges
    alive = bytearray(b"\x01") * m
    peel_support(csr, edge_supports(csr), threshold, alive)
    edge_tris = triangle_index(csr).edge_tris
    # Per-edge triangle records (partner a, partner b, p_a × p_b) for
    # the deterministic core: the pair product is peel-invariant, so it
    # is computed exactly once instead of on every qualification
    # recheck.
    tris: list[list[tuple[int, int, float]]] = []
    for e in range(m):
        if not alive[e]:
            tris.append([])
            continue
        it = iter(edge_tris[e])
        tris.append(
            [(a, b, edge_probs[a] * edge_probs[b]) for a, b, _t in zip(it, it, it)]
        )
    # Every core edge starts unchecked; killed edges re-enqueue the
    # alive partners of their destroyed triangles.
    queue: deque[int] = deque(compress(count(), alive))
    queued = bytearray(alive)
    while queue:
        e = queue.popleft()
        queued[e] = 0
        if not alive[e]:
            continue
        p_e = edge_probs[e]
        # tail(..) <= 1, so qualification <= p_e: an edge whose own
        # probability is already below γ dies without touching the DP.
        if p_e >= gamma:
            tri_probs = [
                tp for a, b, tp in tris[e] if alive[a] and alive[b]
            ]
            # Fewer alive triangles than the threshold makes the tail 0.
            if len(tri_probs) >= threshold and (
                threshold <= 0
                or p_e * tail(tri_probs, threshold) >= gamma
            ):
                continue
        alive[e] = 0
        for a, b, _tp in tris[e]:
            if alive[a] and alive[b]:
                if not queued[a]:
                    queued[a] = 1
                    queue.append(a)
                if not queued[b]:
                    queued[b] = 1
                    queue.append(b)
    return [e for e in range(m) if alive[e]]


def truss_decomposition(csr: CSRGraph) -> list[int]:
    """Truss number of every edge id via a bucket queue.

    Replaces the legacy ``min(support.items())`` rescan per removal
    (``O(m²)``) with lazy bucket entries: every decrement appends the edge
    to its new bucket and stale entries are skipped on pop, for
    ``O(m + #triangles)`` queue work overall.
    """
    edge_tris = triangle_index(csr).edge_tris
    support = [len(lst) // 3 for lst in edge_tris]
    m = len(support)
    trussness = [0] * m
    if m == 0:
        return trussness
    buckets: list[list[int]] = [[] for _ in range(max(support) + 1)]
    for e, s in enumerate(support):
        buckets[s].append(e)
    alive = bytearray(b"\x01") * m
    remaining = m
    current_k = 2
    cursor = 0
    while remaining:
        bucket = buckets[cursor]
        if not bucket:
            cursor += 1
            continue
        e = bucket.pop()
        if not alive[e] or support[e] != cursor:
            continue  # stale lazy entry
        s = support[e]
        if s + 2 > current_k:
            current_k = s + 2
        trussness[e] = current_k
        alive[e] = 0
        remaining -= 1
        lst = edge_tris[e]
        for k in range(0, len(lst), 3):
            a = lst[k]
            b = lst[k + 1]
            if alive[a] and alive[b]:
                for other in (a, b):
                    new_s = support[other] - 1
                    support[other] = new_s
                    buckets[new_s].append(other)
                    if new_s < cursor:
                        cursor = new_s
    return trussness
