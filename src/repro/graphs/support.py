"""Edge-support / cohesion peeling engine over :class:`CSRGraph`.

The legacy algorithms recompute common neighbourhoods with Python set
intersections on every peel step and, for full decomposition, rescan the
whole support dict for its minimum on every removal (``O(m²)``). This
module does the triangle work exactly once per graph:

1. :func:`build_triangle_index` enumerates every triangle in one pass and
   records, per canonical edge id, its triangles as flat ``(partner a,
   partner b, triangle id)`` triples. The index depends only on topology,
   so it is cached on the immutable :class:`CSRGraph` — the TC-Tree's
   first layer decomposes every item over the *same* network CSR and pays
   for enumeration once.
2. Peeling an edge then touches only its recorded triangles: a triangle
   contributes iff both partner edges are still alive, so support and
   cohesion maintenance is ``O(#triangles)`` total with zero set surgery.
   Weights (``min(f_u, f_v, f_w)``, Definition 3.1) come from one flat
   pass over the triangle vertex arrays per frequency map.
3. Full decompositions use a bucket queue (integer support, k-truss) or a
   lazy heap (float cohesion, MPTD levels) instead of per-step min scans.

All functions take and return flat structures (lists/bytearrays indexed
by edge id); converting back to label space is the caller's job.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from heapq import heapify, heappop, heappush

from repro.graphs.csr import CSRGraph

#: Re-exported tolerance — kept numerically identical to the legacy MPTD
#: comparison so the CSR and dict-of-sets paths make the same keep/peel
#: decision at exact-boundary thresholds.
COHESION_TOLERANCE = 1e-9

#: Below this edge count the legacy dict-of-sets algorithms beat the flat
#: engine's fixed costs (CSR conversion, triangle index, heap); the
#: auto-routing entry points fall back to the adjacency-set path. Passing
#: a :class:`CSRGraph` explicitly always uses the engine.
CSR_MIN_EDGES = 512


class TriangleIndex:
    """Flat triangle tables of a CSR graph (topology only, no weights).

    ``tri_u/tri_v/tri_w`` hold the vertex triple (internal ids,
    ``u < v < w``) of each triangle; ``tri_e1/tri_e2/tri_e3`` the edge ids
    of ``(u,v)``, ``(u,w)``, ``(v,w)``. ``edge_tris[e]`` flattens the
    triangles of edge ``e`` as ``[a0, b0, t0, a1, b1, t1, ...]`` —
    partner edge ids plus the triangle id (for weight lookup).
    """

    __slots__ = (
        "tri_u", "tri_v", "tri_w", "tri_e1", "tri_e2", "tri_e3",
        "edge_tris",
    )

    def __init__(self, csr: CSRGraph) -> None:
        indptr = csr.indptr
        indices = csr.indices
        edge_ids = csr.edge_ids
        edge_u = csr.edge_u
        edge_v = csr.edge_v
        n = csr.num_vertices
        m = csr.num_edges
        nbr: list[set[int]] = [
            set(indices[indptr[x]:indptr[x + 1]]) for x in range(n)
        ]
        row_eid: list[dict[int, int]] = [
            dict(zip(
                indices[indptr[x]:indptr[x + 1]],
                edge_ids[indptr[x]:indptr[x + 1]],
            ))
            for x in range(n)
        ]
        tri_u: list[int] = []
        tri_v: list[int] = []
        tri_w: list[int] = []
        tri_e1: list[int] = []
        tri_e2: list[int] = []
        tri_e3: list[int] = []
        edge_tris: list[list[int]] = [[] for _ in range(m)]
        t = 0
        for e in range(m):
            u = edge_u[e]
            v = edge_v[e]
            su = nbr[u]
            sv = nbr[v]
            common = sv & su if len(su) > len(sv) else su & sv
            ru = row_eid[u]
            rv = row_eid[v]
            for w in common:
                if w > v:  # each triangle u < v < w exactly once
                    e_uw = ru[w]
                    e_vw = rv[w]
                    tri_u.append(u)
                    tri_v.append(v)
                    tri_w.append(w)
                    tri_e1.append(e)
                    tri_e2.append(e_uw)
                    tri_e3.append(e_vw)
                    lst = edge_tris[e]
                    lst.append(e_uw)
                    lst.append(e_vw)
                    lst.append(t)
                    lst = edge_tris[e_uw]
                    lst.append(e)
                    lst.append(e_vw)
                    lst.append(t)
                    lst = edge_tris[e_vw]
                    lst.append(e)
                    lst.append(e_uw)
                    lst.append(t)
                    t += 1
        self.tri_u = tri_u
        self.tri_v = tri_v
        self.tri_w = tri_w
        self.tri_e1 = tri_e1
        self.tri_e2 = tri_e2
        self.tri_e3 = tri_e3
        self.edge_tris = edge_tris

    @property
    def num_triangles(self) -> int:
        return len(self.tri_u)


def triangle_index(csr: CSRGraph) -> TriangleIndex:
    """The (cached) triangle index of ``csr`` — built on first use."""
    tri = csr._tri
    if tri is None:
        tri = TriangleIndex(csr)
        csr._tri = tri
    return tri


def edge_supports(csr: CSRGraph) -> list[int]:
    """Triangle count (k-truss support) of every edge."""
    return [len(lst) // 3 for lst in triangle_index(csr).edge_tris]


def triangle_count(csr: CSRGraph) -> int:
    """Total number of triangles, in constant extra memory.

    Uses the cached triangle index when one is already built; otherwise
    counts via sorted-adjacency merges without materializing anything —
    a scalar statistic should not pay the index's O(#triangles) storage.
    """
    tri = csr._tri
    if tri is not None:
        return tri.num_triangles
    indptr = csr.indptr
    indices = csr.indices
    total = 0
    for u in range(csr.num_vertices):
        lo = indptr[u]
        hi = indptr[u + 1]
        start = bisect_right(indices, u, lo, hi)
        for p in range(start, hi):
            v = indices[p]
            # Merge the rows of u and v for common neighbours w > v, so
            # each triangle u < v < w is counted exactly once.
            a = bisect_right(indices, v, p, hi)
            b_lo = indptr[v]
            b_hi = indptr[v + 1]
            b = bisect_right(indices, v, b_lo, b_hi)
            while a < hi and b < b_hi:
                wa = indices[a]
                wb = indices[b]
                if wa < wb:
                    a += 1
                elif wa > wb:
                    b += 1
                else:
                    total += 1
                    a += 1
                    b += 1
    return total


def cohesion_values(
    csr: CSRGraph, frequencies: list[float]
) -> tuple[list[float], list[float]]:
    """Phase 1 of Algorithm 1: per-triangle weights and per-edge cohesion.

    One flat pass over the triangle tables; ``frequencies`` is indexed by
    internal vertex id.
    """
    tri = triangle_index(csr)
    tri_u = tri.tri_u
    tri_v = tri.tri_v
    tri_w = tri.tri_w
    tri_e1 = tri.tri_e1
    tri_e2 = tri.tri_e2
    tri_e3 = tri.tri_e3
    weights = [0.0] * len(tri_u)
    cohesion = [0.0] * csr.num_edges
    for t in range(len(tri_u)):
        f = frequencies[tri_u[t]]
        f_v = frequencies[tri_v[t]]
        if f_v < f:
            f = f_v
        f_w = frequencies[tri_w[t]]
        if f_w < f:
            f = f_w
        weights[t] = f
        cohesion[tri_e1[t]] += f
        cohesion[tri_e2[t]] += f
        cohesion[tri_e3[t]] += f
    return weights, cohesion


def peel_cohesion(
    csr: CSRGraph,
    weights: list[float],
    cohesion: list[float],
    alpha: float,
    alive: bytearray,
    removed_sink: list[int] | None = None,
) -> None:
    """Peel every alive edge with cohesion ``<= alpha`` (plus tolerance).

    Phase 2 of Algorithm 1: FIFO cascade over the triangle index. A
    triangle is destroyed exactly once — when its first edge dies —
    because later removals see a dead partner.
    """
    edge_tris = triangle_index(csr).edge_tris
    bound = alpha + COHESION_TOLERANCE
    m = len(cohesion)
    queue: deque[int] = deque()
    queued = bytearray(m)
    for e in range(m):
        if alive[e] and cohesion[e] <= bound:
            queued[e] = 1
            queue.append(e)
    while queue:
        e = queue.popleft()
        if not alive[e]:
            continue
        alive[e] = 0
        lst = edge_tris[e]
        for k in range(0, len(lst), 3):
            a = lst[k]
            b = lst[k + 1]
            if alive[a] and alive[b]:
                w = weights[lst[k + 2]]
                new_value = cohesion[a] - w
                cohesion[a] = new_value
                if new_value <= bound and not queued[a]:
                    queued[a] = 1
                    queue.append(a)
                new_value = cohesion[b] - w
                cohesion[b] = new_value
                if new_value <= bound and not queued[b]:
                    queued[b] = 1
                    queue.append(b)
        if removed_sink is not None:
            removed_sink.append(e)


def decompose_cohesion(
    csr: CSRGraph,
    frequencies: list[float],
) -> tuple[bytearray, list[tuple[float, list[int]]]]:
    """Full cohesion decomposition of a theme network (Theorem 6.1).

    Runs Phase 1, the α = 0 peel (whose removals belong to no level), and
    the iterated threshold peeling that yields the decomposition levels.
    Returns ``(alive, levels)`` where ``alive`` flags the edges of
    ``C*_p(0)`` (the carrier) and ``levels`` is the ascending list of
    ``(β, removed edge ids)``.

    Two structural improvements over the legacy dict-of-sets loop:

    - level minima come off a single lazy heap instead of a full
      ``min(cohesion.values())`` + peel rescan of every edge per level;
    - all triangle work is O(1) lookups into the cached triangle index —
      no common-neighbour recomputation per removal, and repeated
      decompositions over one CSR graph (the TC-Tree first layer) share
      the enumeration.
    """
    m = csr.num_edges
    weights, cohesion = cohesion_values(csr, frequencies)
    edge_tris = triangle_index(csr).edge_tris
    alive = bytearray(b"\x01") * m

    # α = 0 peel: its removals belong to no level (MPTD Phase 2).
    removed0: list[int] = []
    peel_cohesion(csr, weights, cohesion, 0.0, alive, removed_sink=removed0)
    remaining = m - len(removed0)

    # Snapshot C*_p(0) before the level rounds consume the alive set.
    carrier_alive = bytearray(alive)

    # Iterated threshold peeling off one lazy heap: each round reads the
    # minimum alive cohesion β, then keeps popping while the minimum stays
    # ``<= β`` (plus tolerance). Edges dragged to ``<= bound`` mid-round
    # are pushed immediately so they fall in the same round; edges
    # decremented but still above the bound only need a current entry by
    # the *next* round's β-scan, so they are batched in a per-round
    # ``touched`` set and pushed once at round end — one push per touched
    # edge per round instead of one per triangle destruction. Stale
    # entries (dead edge, or stored value no longer current) are skipped
    # on pop.
    heap = [(cohesion[e], e) for e in range(m) if alive[e]]
    heapify(heap)
    push = heappush
    pop = heappop
    levels: list[tuple[float, list[int]]] = []
    while remaining:
        while heap:
            value, e = heap[0]
            if alive[e] and value == cohesion[e]:
                break
            pop(heap)
        beta = heap[0][0]
        bound = beta + COHESION_TOLERANCE
        removed: list[int] = []
        touched: set[int] = set()
        while heap and heap[0][0] <= bound:
            value, e = pop(heap)
            if not alive[e] or value != cohesion[e]:
                continue
            alive[e] = 0
            remaining -= 1
            removed.append(e)
            lst = edge_tris[e]
            for k in range(0, len(lst), 3):
                a = lst[k]
                b = lst[k + 1]
                if alive[a] and alive[b]:
                    w = weights[lst[k + 2]]
                    new_value = cohesion[a] - w
                    cohesion[a] = new_value
                    if new_value <= bound:
                        push(heap, (new_value, a))
                    else:
                        touched.add(a)
                    new_value = cohesion[b] - w
                    cohesion[b] = new_value
                    if new_value <= bound:
                        push(heap, (new_value, b))
                    else:
                        touched.add(b)
        for e in touched:
            if alive[e]:
                push(heap, (cohesion[e], e))
        levels.append((beta, removed))
    return carrier_alive, levels


def peel_support(
    csr: CSRGraph,
    support: list[int],
    threshold: int,
    alive: bytearray,
) -> None:
    """Peel every edge whose support is below ``threshold``, in place.

    ``support`` always equals the number of *alive* triangles of each
    alive edge.
    """
    edge_tris = triangle_index(csr).edge_tris
    m = len(support)
    queue: deque[int] = deque()
    queued = bytearray(m)
    for e in range(m):
        if alive[e] and support[e] < threshold:
            queued[e] = 1
            queue.append(e)
    while queue:
        e = queue.popleft()
        if not alive[e]:
            continue
        alive[e] = 0
        lst = edge_tris[e]
        for k in range(0, len(lst), 3):
            a = lst[k]
            b = lst[k + 1]
            if alive[a] and alive[b]:
                support[a] -= 1
                if support[a] < threshold and not queued[a]:
                    queued[a] = 1
                    queue.append(a)
                support[b] -= 1
                if support[b] < threshold and not queued[b]:
                    queued[b] = 1
                    queue.append(b)


def k_truss_edges(csr: CSRGraph, k: int) -> list[int]:
    """Edge ids of the maximal k-truss of ``csr``."""
    support = edge_supports(csr)
    alive = bytearray(b"\x01") * len(support)
    peel_support(csr, support, k - 2, alive)
    return [e for e in range(len(support)) if alive[e]]


def truss_decomposition(csr: CSRGraph) -> list[int]:
    """Truss number of every edge id via a bucket queue.

    Replaces the legacy ``min(support.items())`` rescan per removal
    (``O(m²)``) with lazy bucket entries: every decrement appends the edge
    to its new bucket and stale entries are skipped on pop, for
    ``O(m + #triangles)`` queue work overall.
    """
    edge_tris = triangle_index(csr).edge_tris
    support = [len(lst) // 3 for lst in edge_tris]
    m = len(support)
    trussness = [0] * m
    if m == 0:
        return trussness
    buckets: list[list[int]] = [[] for _ in range(max(support) + 1)]
    for e, s in enumerate(support):
        buckets[s].append(e)
    alive = bytearray(b"\x01") * m
    remaining = m
    current_k = 2
    cursor = 0
    while remaining:
        bucket = buckets[cursor]
        if not bucket:
            cursor += 1
            continue
        e = bucket.pop()
        if not alive[e] or support[e] != cursor:
            continue  # stale lazy entry
        s = support[e]
        if s + 2 > current_k:
            current_k = s + 2
        trussness[e] = current_k
        alive[e] = 0
        remaining -= 1
        lst = edge_tris[e]
        for k in range(0, len(lst), 3):
            a = lst[k]
            b = lst[k + 1]
            if alive[a] and alive[b]:
                for other in (a, b):
                    new_s = support[other] - 1
                    support[other] = new_s
                    buckets[new_s].append(other)
                    if new_s < cursor:
                        cursor = new_s
    return trussness
