"""Connected components.

Theme communities (Definition 3.5) are the maximal connected subgraphs of a
maximal pattern truss, so component extraction is on the hot path of every
mining result.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Graph, Vertex


def connected_components(graph: Graph) -> list[set[Vertex]]:
    """All connected components as vertex sets, largest-first.

    Isolated vertices form singleton components. The largest-first order is
    deterministic given equal sizes (ties broken by smallest member) so test
    expectations and reports are stable.
    """
    seen: set[Vertex] = set()
    components: list[set[Vertex]] = []
    for start in graph:
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    component.add(w)
                    queue.append(w)
        components.append(component)
    components.sort(key=lambda c: (-len(c), min(c, default=0)))
    return components


def is_connected(graph: Graph) -> bool:
    """True for the empty graph and for graphs with a single component."""
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)[0]) == graph.num_vertices
