"""Validation of database networks.

Loaders and builders can produce structurally odd networks (vertices
without databases, labels pointing nowhere, isolated vertices). Mining is
defined for all of them, but most oddities indicate an ingestion bug, so
``validate_network`` reports them as issues with a severity, and the CLI
exposes it as ``repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.dbnetwork import DatabaseNetwork

SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class ValidationIssue:
    """One finding: severity, machine-readable code, human message."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def validate_network(network: DatabaseNetwork) -> list[ValidationIssue]:
    """Check a network for structural problems, errors first.

    Errors mean the container's invariants are broken (should be
    impossible through the public API — they catch hand-built or
    deserialized data). Warnings mean mining will silently ignore parts of
    the input. Infos are notable but harmless.
    """
    issues: list[ValidationIssue] = []

    # --- errors: broken invariants -----------------------------------
    for v in network.databases:
        if v not in network.graph:
            issues.append(
                ValidationIssue(
                    "error",
                    "db-unknown-vertex",
                    f"database attached to vertex {v} which is not in the "
                    "graph",
                )
            )
    surplus_labels = [
        v for v in network.vertex_labels if v not in network.graph
    ]
    if surplus_labels:
        # Benign by design: sub-networks and BFS samples share the parent
        # network's label maps, so surplus labels are expected there.
        issues.append(
            ValidationIssue(
                "info",
                "surplus-vertex-labels",
                f"{len(surplus_labels)} vertex labels refer to vertices "
                "not in the graph (normal for sub-networks/samples)",
            )
        )

    # --- warnings: mining will ignore these --------------------------
    without_db = [
        v for v in network.graph.vertices() if v not in network.databases
    ]
    if without_db:
        issues.append(
            ValidationIssue(
                "warning",
                "vertices-without-database",
                f"{len(without_db)} vertices have no transaction database "
                "(they can never join a theme network); first few: "
                f"{sorted(without_db)[:5]}",
            )
        )
    empty_dbs = [
        v for v, db in network.databases.items() if db.num_transactions == 0
    ]
    if empty_dbs:
        issues.append(
            ValidationIssue(
                "warning",
                "empty-databases",
                f"{len(empty_dbs)} vertices have empty databases; first "
                f"few: {sorted(empty_dbs)[:5]}",
            )
        )
    labelled_items = set(network.item_labels)
    used_items: set[int] = set()
    for db in network.databases.values():
        used_items |= db.items()
    unused_labels = labelled_items - used_items
    if unused_labels:
        issues.append(
            ValidationIssue(
                "warning",
                "unused-item-labels",
                f"{len(unused_labels)} item labels never occur in any "
                f"database; first few: {sorted(unused_labels)[:5]}",
            )
        )

    # --- infos --------------------------------------------------------
    isolated = [
        v for v in network.graph.vertices() if network.graph.degree(v) == 0
    ]
    if isolated:
        issues.append(
            ValidationIssue(
                "info",
                "isolated-vertices",
                f"{len(isolated)} isolated vertices (no edges); they can "
                "never join a community",
            )
        )
    unlabeled_items = used_items - labelled_items
    if network.item_labels and unlabeled_items:
        issues.append(
            ValidationIssue(
                "info",
                "partially-labelled-items",
                f"{len(unlabeled_items)} items used but unlabelled while "
                "other items have labels",
            )
        )
    issues.sort(key=lambda i: SEVERITIES.index(i.severity))
    return issues


def has_errors(issues: list[ValidationIssue]) -> bool:
    return any(issue.severity == "error" for issue in issues)
