"""BFS edge sampling of database networks (Section 7.1 protocol).

The paper evaluates on sub-networks "sampled from the original database
networks by performing a breadth first search from a randomly picked seed
vertex", with a target edge count. ``bfs_edge_sample`` reproduces that:
take the first *m* edges touched by a BFS from a seeded random start and
return the edge-induced sub-network. ``sample_series`` produces the growing
series used by the scalability figures (Figure 4).
"""

from __future__ import annotations

import random

from repro.errors import GraphError
from repro.graphs.traversal import bfs_edges
from repro.network.dbnetwork import DatabaseNetwork


def bfs_edge_sample(
    network: DatabaseNetwork,
    num_edges: int,
    seed: int | None = None,
) -> DatabaseNetwork:
    """Edge-induced sub-network of the first ``num_edges`` BFS edges.

    The start vertex is chosen uniformly (seeded) among non-isolated
    vertices; if the start's component has fewer edges than requested, the
    BFS restarts from the next unvisited non-isolated vertex, mirroring how
    one would sample a disconnected network.
    """
    if num_edges < 0:
        raise GraphError(f"num_edges must be >= 0, got {num_edges}")
    rng = random.Random(seed)
    graph = network.graph
    non_isolated = sorted(v for v in graph if graph.degree(v) > 0)
    if not non_isolated:
        return network.subnetwork([])
    rng.shuffle(non_isolated)

    collected: list[tuple[int, int]] = []
    visited: set[int] = set()
    for start in non_isolated:
        if len(collected) >= num_edges:
            break
        if start in visited:
            continue
        for edge in bfs_edges(graph, start):
            u, v = edge
            visited.add(u)
            visited.add(v)
            collected.append(edge)
            if len(collected) >= num_edges:
                break
        if len(collected) >= num_edges:
            break
    return network.edge_subnetwork(collected)


def sample_series(
    network: DatabaseNetwork,
    sizes: list[int],
    seed: int | None = None,
) -> list[DatabaseNetwork]:
    """Growing BFS samples with a shared seed (nested prefixes).

    Because all samples reuse the same BFS order, each smaller sample is a
    prefix of the larger ones — exactly the setting of Figure 4 where the
    x-axis is "#Sampled Edges" along one BFS exploration.
    """
    return [bfs_edge_sample(network, size, seed=seed) for size in sizes]
