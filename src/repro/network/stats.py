"""Dataset statistics — the quantities of Table 2.

The paper reports, per database network: #Vertices, #Edges, #Transactions,
#Items (total occurrences over all vertex databases) and #Items (unique,
``|S|``). ``network_statistics`` computes exactly those plus a few derived
quantities used in the analysis sections (average degree, triangle count).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.triangles import count_triangles
from repro.network.dbnetwork import DatabaseNetwork


@dataclass(frozen=True)
class NetworkStatistics:
    """Summary statistics of a database network (Table 2 row)."""

    num_vertices: int
    num_edges: int
    num_transactions: int
    num_items_total: int
    num_items_unique: int
    num_triangles: int

    @property
    def average_degree(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    @property
    def average_transactions_per_vertex(self) -> float:
        if self.num_vertices == 0:
            return 0.0
        return self.num_transactions / self.num_vertices

    def as_row(self) -> dict[str, float]:
        """Row form used by the benchmark reporters."""
        return {
            "#Vertices": self.num_vertices,
            "#Edges": self.num_edges,
            "#Transactions": self.num_transactions,
            "#Items (total)": self.num_items_total,
            "#Items (unique)": self.num_items_unique,
        }


def network_statistics(
    network: DatabaseNetwork, count_triangles_too: bool = True
) -> NetworkStatistics:
    """Compute the Table 2 statistics for ``network``.

    Triangle counting is optional because it is the only super-linear part;
    the Table 2 reproduction needs it off for the largest SYN instances.
    """
    num_transactions = sum(
        db.num_transactions for db in network.databases.values()
    )
    num_items_total = sum(db.total_items for db in network.databases.values())
    unique: set[int] = set()
    for db in network.databases.values():
        unique |= db.items()
    triangles = (
        count_triangles(network.graph) if count_triangles_too else 0
    )
    return NetworkStatistics(
        num_vertices=network.num_vertices,
        num_edges=network.num_edges,
        num_transactions=num_transactions,
        num_items_total=num_items_total,
        num_items_unique=len(unique),
        num_triangles=triangles,
    )
