"""Database networks: the paper's central data model.

A database network (Definition in Section 3.1) is an undirected graph whose
every vertex carries a transaction database over a shared item vocabulary.
This package provides the :class:`DatabaseNetwork` container, theme-network
induction, the BFS edge-sampling protocol used throughout the paper's
evaluation, serialization, and the Table 2 statistics.
"""

from repro.network.builder import DatabaseNetworkBuilder
from repro.network.dbnetwork import DatabaseNetwork
from repro.network.io import load_network, save_network
from repro.network.sampling import bfs_edge_sample, sample_series
from repro.network.stats import NetworkStatistics, network_statistics
from repro.network.theme import (
    induce_theme_network,
    theme_frequencies,
    theme_network_within,
)

__all__ = [
    "DatabaseNetwork",
    "DatabaseNetworkBuilder",
    "induce_theme_network",
    "theme_network_within",
    "theme_frequencies",
    "bfs_edge_sample",
    "sample_series",
    "load_network",
    "save_network",
    "NetworkStatistics",
    "network_statistics",
]
