"""Theme-network induction (Section 3.1).

For a pattern ``p``, the theme network ``G_p`` is the subgraph induced by
the vertices with ``f_i(p) > 0``, together with those frequencies. The
mining algorithms only ever need the pair (subgraph, frequency map), so the
induction helpers return exactly that.

``theme_network_within`` is the TCFI/TC-Tree fast path: it induces ``G_p``
not from the full network but inside an already-small carrier subgraph
(the intersection of two parent trusses — Proposition 5.3).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro._ordering import make_pattern
from repro.graphs.csr import CSRGraph, GraphLike
from repro.graphs.graph import Graph
from repro.network.dbnetwork import DatabaseNetwork

FrequencyMap = dict[int, float]


def theme_frequencies(
    network: DatabaseNetwork,
    pattern: Iterable[int],
    candidates: Iterable[int] | None = None,
) -> FrequencyMap:
    """``f_i(p)`` for every candidate vertex with a positive frequency.

    ``candidates`` defaults to all vertices with databases; passing a
    smaller set is the core of the intersection-based pruning.
    """
    canonical = make_pattern(pattern)
    if candidates is None:
        candidates = network.databases.keys()
    frequencies: FrequencyMap = {}
    if len(canonical) == 1:
        # Single-item fast path: read the vertical index directly instead
        # of going through the pattern-memo machinery. Level 1 of every
        # finder and the whole first TC-Tree layer hit this path.
        item = canonical[0]
        for v in candidates:
            database = network.databases.get(v)
            if database is None:
                continue
            f = database.item_frequency(item)
            if f > 0.0:
                frequencies[v] = f
        return frequencies
    for v in candidates:
        f = network.frequency(v, canonical)
        if f > 0.0:
            frequencies[v] = f
    return frequencies


def induce_theme_network(
    network: DatabaseNetwork, pattern: Iterable[int]
) -> tuple[Graph, FrequencyMap]:
    """The theme network ``G_p`` induced from the full database network.

    Returns the vertex-induced subgraph over ``{v : f_v(p) > 0}`` and the
    frequency map restricted to those vertices.
    """
    frequencies = theme_frequencies(network, pattern)
    graph = network.graph.subgraph(frequencies.keys())
    return graph, frequencies


def theme_network_within(
    network: DatabaseNetwork,
    pattern: Iterable[int],
    carrier: GraphLike,
) -> tuple[GraphLike, FrequencyMap]:
    """Induce ``G_p`` restricted to a carrier subgraph.

    Used by TCFI and the TC-Tree: by Proposition 5.3 the maximal pattern
    truss of ``p = p1 ∪ p2`` lives inside ``C*_{p1}(α) ∩ C*_{p2}(α)``, so
    only carrier vertices need frequency probes and only carrier edges can
    survive. A CSR carrier yields a CSR theme network, keeping the whole
    TC-Tree child round trip on the fast path.
    """
    frequencies = theme_frequencies(network, pattern, candidates=carrier)
    graph = carrier.subgraph(frequencies.keys())
    return graph, frequencies


def intersect_graphs(first: GraphLike, second: GraphLike) -> GraphLike:
    """Edge intersection of two graphs (the TCFI carrier ``C*_1 ∩ C*_2``).

    Two CSR carriers intersect by sorted-adjacency array merges and stay
    in CSR form; any legacy operand drops the pair to the adjacency-set
    path (mixed pairs normalize to legacy graphs first).
    """
    if isinstance(first, CSRGraph) and isinstance(second, CSRGraph):
        return first.intersect(second)
    # Mixed or legacy pair: iterate the smaller side's edges and probe the
    # other (both graph types answer has_edge) — no bulk conversion.
    if first.num_edges > second.num_edges:
        first, second = second, first
    result = Graph()
    for u, v in first.iter_edges():
        if second.has_edge(u, v):
            result.add_edge(u, v)
    return result
