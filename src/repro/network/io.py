"""Serialization of database networks.

A single JSON document holds the graph, per-vertex databases, and label
maps. The format is deliberately simple and diff-friendly: it is the
interchange format for the CLI, the examples, and for caching generated
evaluation datasets between benchmark runs.

Schema (version 1)::

    {
      "format": "repro-dbnetwork",
      "version": 1,
      "vertices": [0, 1, ...],
      "edges": [[0, 1], ...],
      "databases": {"0": [[item, ...], ...], ...},
      "vertex_labels": {"0": "alice", ...},     # optional
      "item_labels": {"0": "data mining", ...}  # optional
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import NetworkFormatError
from repro.graphs.graph import Graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase

_FORMAT = "repro-dbnetwork"
_VERSION = 1


def network_to_dict(network: DatabaseNetwork) -> dict:
    """Plain-dict form of a network (the JSON document, unserialized)."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "vertices": sorted(network.graph.vertices()),
        "edges": sorted(network.graph.edges()),
        "databases": {
            str(v): [sorted(t) for t in db.transactions()]
            for v, db in sorted(network.databases.items())
        },
        "vertex_labels": {
            str(v): label for v, label in sorted(network.vertex_labels.items())
        },
        "item_labels": {
            str(i): label for i, label in sorted(network.item_labels.items())
        },
    }


def network_from_dict(document: dict) -> DatabaseNetwork:
    """Parse the plain-dict form back into a network."""
    if document.get("format") != _FORMAT:
        raise NetworkFormatError(
            f"not a {_FORMAT} document: format={document.get('format')!r}"
        )
    if document.get("version") != _VERSION:
        raise NetworkFormatError(
            f"unsupported version {document.get('version')!r}"
        )
    graph = Graph()
    for v in document.get("vertices", []):
        graph.add_vertex(int(v))
    for u, v in document.get("edges", []):
        graph.add_edge(int(u), int(v))
    databases = {}
    for v_str, transactions in document.get("databases", {}).items():
        databases[int(v_str)] = TransactionDatabase(
            [int(i) for i in t] for t in transactions
        )
    vertex_labels = {
        int(v): label
        for v, label in document.get("vertex_labels", {}).items()
    }
    item_labels = {
        int(i): label
        for i, label in document.get("item_labels", {}).items()
    }
    return DatabaseNetwork(graph, databases, vertex_labels, item_labels)


def save_network(network: DatabaseNetwork, path: str | Path) -> None:
    """Write a network to a JSON file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(network_to_dict(network), handle)


def load_network(path: str | Path) -> DatabaseNetwork:
    """Read a network from a JSON file written by :func:`save_network`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise NetworkFormatError(f"invalid JSON in {path}: {exc}") from exc
    return network_from_dict(document)
