"""The :class:`DatabaseNetwork` container.

Internally vertices and items are dense integers for speed; the container
keeps optional label maps so applications can use human-readable vertex
names (authors, users) and item names (keywords, places). All mining
algorithms operate on the integer view.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro._ordering import Pattern, make_pattern
from repro.errors import DatabaseError, GraphError
from repro.graphs.csr import CSRGraph, as_csr
from repro.graphs.graph import Graph
from repro.txdb.database import TransactionDatabase


class DatabaseNetwork:
    """An undirected graph whose vertices carry transaction databases.

    Use :class:`~repro.network.builder.DatabaseNetworkBuilder` to construct
    one from labelled data; construct directly when vertices/items are
    already dense integers.
    """

    def __init__(
        self,
        graph: Graph | None = None,
        databases: dict[int, TransactionDatabase] | None = None,
        vertex_labels: dict[int, Hashable] | None = None,
        item_labels: dict[int, Hashable] | None = None,
    ) -> None:
        self.graph = graph if graph is not None else Graph()
        self.databases: dict[int, TransactionDatabase] = databases or {}
        self.vertex_labels: dict[int, Hashable] = vertex_labels or {}
        self.item_labels: dict[int, Hashable] = item_labels or {}
        self._csr_cache: tuple[tuple[int, int], CSRGraph | None] | None = None
        for v in self.databases:
            if v not in self.graph:
                raise GraphError(
                    f"database attached to unknown vertex {v!r}"
                )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(
        self,
        vertex: int,
        database: TransactionDatabase | None = None,
    ) -> None:
        self.graph.add_vertex(vertex)
        if database is not None:
            self.databases[vertex] = database

    def add_edge(self, u: int, v: int) -> None:
        self.graph.add_edge(u, v)

    def set_database(self, vertex: int, database: TransactionDatabase) -> None:
        if vertex not in self.graph:
            raise GraphError(f"vertex {vertex!r} not in network")
        self.databases[vertex] = database

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def csr_graph(self) -> CSRGraph | None:
        """Cached CSR view of the topology (None for non-int vertices).

        The cache is keyed on ``(num_vertices, num_edges)``; the network's
        construction API is grow-only, so any topology mutation changes
        the counts and invalidates it.
        """
        key = (self.graph.num_vertices, self.graph.num_edges)
        cached = self._csr_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        csr = as_csr(self.graph)
        self._csr_cache = (key, csr)
        return csr

    def database(self, vertex: int) -> TransactionDatabase:
        try:
            return self.databases[vertex]
        except KeyError as exc:
            raise DatabaseError(
                f"vertex {vertex!r} has no transaction database"
            ) from exc

    def frequency(self, vertex: int, pattern: Iterable[int]) -> float:
        """``f_i(p)`` — 0.0 when the vertex has no database."""
        database = self.databases.get(vertex)
        if database is None:
            return 0.0
        return database.frequency(pattern)

    def item_universe(self) -> list[int]:
        """Sorted list of all items appearing in any vertex database (S)."""
        universe: set[int] = set()
        for database in self.databases.values():
            universe |= database.items()
        return sorted(universe)

    def vertices_containing_item(self, item: int) -> list[int]:
        """Vertices whose database mentions ``item`` at least once."""
        return [
            v
            for v, database in self.databases.items()
            if database.contains_item(item)
        ]

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def vertex_label(self, vertex: int) -> Hashable:
        return self.vertex_labels.get(vertex, vertex)

    def item_label(self, item: int) -> Hashable:
        return self.item_labels.get(item, item)

    def pattern_labels(self, pattern: Pattern) -> tuple[Hashable, ...]:
        """Human-readable spelling of a pattern."""
        return tuple(self.item_label(i) for i in make_pattern(pattern))

    # ------------------------------------------------------------------
    # derived networks
    # ------------------------------------------------------------------
    def subnetwork(self, vertices: Iterable[int]) -> "DatabaseNetwork":
        """Vertex-induced sub-network sharing the original databases.

        Databases are shared (not copied): mining never mutates them, and
        sharing keeps BFS sampling cheap.
        """
        keep = set(vertices)
        graph = self.graph.subgraph(keep)
        databases = {
            v: db for v, db in self.databases.items() if v in keep
        }
        return DatabaseNetwork(
            graph,
            databases,
            vertex_labels=self.vertex_labels,
            item_labels=self.item_labels,
        )

    def edge_subnetwork(
        self, edges: Iterable[tuple[int, int]]
    ) -> "DatabaseNetwork":
        """Edge-induced sub-network sharing the original databases."""
        graph = self.graph.edge_subgraph(edges)
        databases = {
            v: self.databases[v] for v in graph if v in self.databases
        }
        return DatabaseNetwork(
            graph,
            databases,
            vertex_labels=self.vertex_labels,
            item_labels=self.item_labels,
        )

    def __repr__(self) -> str:
        return (
            f"DatabaseNetwork(|V|={self.num_vertices}, "
            f"|E|={self.num_edges}, "
            f"databases={len(self.databases)})"
        )
