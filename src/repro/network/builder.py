"""Builder turning labelled data into a dense-integer DatabaseNetwork.

Applications speak in labels ("alice" follows "bob"; transaction
{"data mining", "sequential pattern"}); the mining core speaks in dense
ints. The builder interns labels on first sight and produces the final
:class:`~repro.network.dbnetwork.DatabaseNetwork` with both label maps
populated.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.graphs.graph import Graph
from repro.network.dbnetwork import DatabaseNetwork
from repro.txdb.database import TransactionDatabase


class DatabaseNetworkBuilder:
    """Incremental construction of a database network from labelled data."""

    def __init__(self) -> None:
        self._vertex_ids: dict[Hashable, int] = {}
        self._item_ids: dict[Hashable, int] = {}
        self._graph = Graph()
        self._databases: dict[int, TransactionDatabase] = {}

    # ------------------------------------------------------------------
    def vertex_id(self, label: Hashable) -> int:
        """Intern a vertex label, creating the vertex on first sight."""
        vid = self._vertex_ids.get(label)
        if vid is None:
            vid = len(self._vertex_ids)
            self._vertex_ids[label] = vid
            self._graph.add_vertex(vid)
        return vid

    def item_id(self, label: Hashable) -> int:
        """Intern an item label."""
        iid = self._item_ids.get(label)
        if iid is None:
            iid = len(self._item_ids)
            self._item_ids[label] = iid
        return iid

    def add_edge(self, u_label: Hashable, v_label: Hashable) -> "DatabaseNetworkBuilder":
        self._graph.add_edge(self.vertex_id(u_label), self.vertex_id(v_label))
        return self

    def add_transaction(
        self, vertex_label: Hashable, items: Iterable[Hashable]
    ) -> "DatabaseNetworkBuilder":
        """Append one transaction to a vertex's database."""
        vid = self.vertex_id(vertex_label)
        database = self._databases.get(vid)
        if database is None:
            database = TransactionDatabase()
            self._databases[vid] = database
        database.add_transaction(self.item_id(i) for i in items)
        return self

    def add_transactions(
        self,
        vertex_label: Hashable,
        transactions: Iterable[Iterable[Hashable]],
    ) -> "DatabaseNetworkBuilder":
        for transaction in transactions:
            self.add_transaction(vertex_label, transaction)
        return self

    # ------------------------------------------------------------------
    def build(self) -> DatabaseNetwork:
        """Finalize into a DatabaseNetwork (the builder stays usable)."""
        vertex_labels = {vid: label for label, vid in self._vertex_ids.items()}
        item_labels = {iid: label for label, iid in self._item_ids.items()}
        return DatabaseNetwork(
            self._graph.copy(),
            dict(self._databases),
            vertex_labels=vertex_labels,
            item_labels=item_labels,
        )
