"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised on invalid graph operations (unknown vertex, self-loop, ...)."""


class DatabaseError(ReproError):
    """Raised on invalid transaction-database operations."""


class NetworkFormatError(ReproError):
    """Raised when parsing a serialized database network fails."""


class MiningError(ReproError):
    """Raised on invalid mining parameters (e.g. negative thresholds)."""


class BenchConfigError(ReproError):
    """Raised when a benchmark-fleet config or record is invalid."""


class ObservabilityError(ReproError):
    """Raised on invalid metrics/trace operations (bad buckets, merges)."""


class ServeError(ReproError):
    """Raised on invalid serving-layer requests."""


class UnknownEndpointError(ServeError):
    """Raised when an HTTP request names an endpoint the server lacks."""


class BadRequestError(ServeError):
    """Raised when an HTTP request is malformed (maps to a 400 response)."""


class AnalysisError(ReproError):
    """Raised on invalid static-analysis inputs (bad baseline, unknown rule)."""


class TCIndexError(ReproError):
    """Raised on invalid TC-Tree / warehouse operations.

    Historically named ``IndexError_`` (trailing underscore to avoid
    shadowing the built-in :class:`IndexError`); the old name remains
    importable as a deprecated alias.
    """


def __getattr__(name: str):
    if name == "IndexError_":
        import warnings

        warnings.warn(
            "repro.errors.IndexError_ is deprecated; "
            "use repro.errors.TCIndexError instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return TCIndexError
    raise AttributeError(  # repro-lint: disable=error-taxonomy
        f"module {__name__!r} has no attribute {name!r}"
    )
