"""Warehouse workflow: index once, answer many queries (Section 6).

Re-mining for every new threshold α wastes the shared work; the paper's
answer is the TC-Tree warehouse. This script builds one for a synthetic
network, persists it to disk, reloads it, and answers both query modes —
QBA (by threshold) and QBP (by pattern) — comparing query latency against
mining from scratch.

Run:  python examples/index_and_query.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import (
    ThemeCommunityFinder,
    ThemeCommunityWarehouse,
    generate_synthetic_network,
)


def main() -> None:
    network = generate_synthetic_network(
        num_vertices=250, num_items=30, num_seeds=8, seed=3
    )
    print(f"network: {network}")

    start = time.perf_counter()
    warehouse = ThemeCommunityWarehouse.build(network, max_length=3)
    build_seconds = time.perf_counter() - start
    print(
        f"built TC-Tree in {build_seconds:.2f}s: "
        f"{warehouse.num_indexed_trusses} trusses indexed"
    )

    # Persist and reload — the warehouse is a plain JSON document.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "syn.tctree.json"
        warehouse.save(path)
        print(f"saved index: {path.stat().st_size / 1024:.1f} KiB")
        warehouse = ThemeCommunityWarehouse.load(path)

    # QBA: sweep alpha without re-mining.
    print("\nquery by alpha (QBA):")
    finder = ThemeCommunityFinder(network)
    for alpha in (0.0, 0.2, 0.4):
        start = time.perf_counter()
        answer = warehouse.query(alpha=alpha)
        query_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        mined = finder.find(alpha=alpha, max_length=3)
        mine_ms = (time.perf_counter() - start) * 1000

        assert set(answer.patterns()) == set(mined.patterns())
        print(
            f"  alpha={alpha}: {answer.retrieved_nodes} trusses in "
            f"{query_ms:.2f}ms (re-mining: {mine_ms:.0f}ms, "
            f"{mine_ms / max(query_ms, 1e-6):.0f}x slower)"
        )

    # QBP: what themes involve a given set of items?
    print("\nquery by pattern (QBP):")
    deepest = max(warehouse.tree.patterns(), key=len)
    answer = warehouse.query(pattern=deepest)
    print(
        f"  q={deepest}: {answer.retrieved_nodes} trusses "
        f"({[t.pattern for t in answer.trusses]})"
    )


if __name__ == "__main__":
    main()
