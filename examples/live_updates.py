"""Keeping the warehouse fresh: incremental index maintenance.

A theme-community warehouse serves queries while the underlying data keeps
changing — users keep checking in, authors keep publishing. Rebuilding the
TC-Tree from scratch on every change discards all unaffected work;
``update_vertex_database`` rebuilds only the subproblems that involve the
updated vertex's items and reuses every other decomposition by identity.

Run:  python examples/live_updates.py
"""

from __future__ import annotations

import time

from repro import build_tc_tree, generate_checkin_network, update_vertex_database
from repro.index.stats import tc_tree_statistics


def main() -> None:
    network = generate_checkin_network(
        num_users=120, num_locations=40, num_groups=8, periods=20, seed=9
    )
    start = time.perf_counter()
    tree = build_tc_tree(network, max_length=3)
    build_s = time.perf_counter() - start
    stats = tc_tree_statistics(tree)
    print(
        f"initial index: {stats.num_nodes} trusses, depth {stats.depth}, "
        f"{stats.total_edges_stored} edges stored ({build_s:.2f}s)"
    )

    # A user checks in at two places over the next few days.
    user = 7
    new_transactions = [[0, 1], [0]]
    start = time.perf_counter()
    updated = update_vertex_database(
        network, tree, user, new_transactions, max_length=3
    )
    update_s = time.perf_counter() - start

    reused = sum(
        1
        for node in updated.iter_nodes()
        if (old := tree.find_node(node.pattern)) is not None
        and node.decomposition is old.decomposition
    )
    print(
        f"after update of user {user}: {updated.num_nodes} trusses "
        f"({update_s:.2f}s, {reused} decompositions reused verbatim)"
    )

    # The refreshed index is exactly what a scratch rebuild would produce.
    start = time.perf_counter()
    scratch = build_tc_tree(network, max_length=3)
    scratch_s = time.perf_counter() - start
    identical = updated.patterns() == scratch.patterns() and all(
        sorted(updated.find_node(p).decomposition.edges_at(0.0))
        == sorted(scratch.find_node(p).decomposition.edges_at(0.0))
        for p in scratch.patterns()
    )
    print(
        f"scratch rebuild: {scratch_s:.2f}s — incremental result "
        f"identical: {identical}"
    )


if __name__ == "__main__":
    main()
