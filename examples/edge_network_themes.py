"""Edge database networks: themes on relationships, not on vertices.

The paper's future-work direction (Section 8): attach the transaction
database to each *edge* — here, the topics of messages exchanged between
two users — and find groups whose *relationships* share a theme. A theme
community is then a set of people whose pairwise conversations all
frequently cover the same topics.

Run:  python examples/edge_network_themes.py
"""

from __future__ import annotations

import random

from repro import EdgeDatabaseNetwork, EdgeThemeCommunityFinder
from repro.edgenet.index import build_edge_tc_tree

TOPICS = {
    "climbing-crew": ["climbing", "gear"],
    "book-club": ["novels", "reviews"],
    "startup": ["funding", "product"],
}


def build_message_network(seed: int = 5) -> tuple[EdgeDatabaseNetwork, dict]:
    """Three friend circles; each circle's internal conversations revolve
    around its topics, with occasional off-topic chatter."""
    rng = random.Random(seed)
    network = EdgeDatabaseNetwork()
    circles = {
        "climbing-crew": list(range(0, 6)),
        "book-club": list(range(4, 10)),  # overlaps the climbers
        "startup": list(range(10, 15)),
    }
    noise_topics = ["weather", "lunch", "weekend", "traffic"]
    for name, members in circles.items():
        topics = TOPICS[name]
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                # Each pair exchanges a handful of message threads.
                for _ in range(rng.randint(3, 6)):
                    thread = {
                        t for t in topics if rng.random() < 0.7
                    }
                    if rng.random() < 0.5:
                        thread.add(rng.choice(noise_topics))
                    if not thread:
                        thread = {rng.choice(noise_topics)}
                    network.add_transaction(a, b, _intern(thread))
    return network, circles


_ITEM_IDS: dict[str, int] = {}
_ITEM_NAMES: dict[int, str] = {}


def _intern(topics: set[str]) -> list[int]:
    ids = []
    for topic in sorted(topics):  # sorted: stable ids across hash seeds
        if topic not in _ITEM_IDS:
            _ITEM_IDS[topic] = len(_ITEM_IDS)
            _ITEM_NAMES[_ITEM_IDS[topic]] = topic
        ids.append(_ITEM_IDS[topic])
    return ids


def main() -> None:
    network, circles = build_message_network()
    print(f"message network: {network}")
    print(f"planted circles: { {k: v for k, v in circles.items()} }")
    print()

    finder = EdgeThemeCommunityFinder(network)
    communities = finder.find_communities(alpha=0.3, max_length=2)
    print(f"found {len(communities)} edge-theme communities at alpha=0.3:")
    for community in communities:
        topics = ",".join(
            _ITEM_NAMES.get(i, str(i)) for i in community.pattern
        )
        print(f"  topic(s) [{topics}]  members {sorted(community.members)}")
    print()

    # Index and query, mirroring the vertex-model warehouse.
    tree = build_edge_tc_tree(network, max_length=2)
    print(f"edge TC-Tree: {tree.num_nodes} trusses indexed")
    climbing = _ITEM_IDS["climbing"]
    gear = _ITEM_IDS["gear"]
    for found_pattern, members in tree.query_communities(
        pattern=(climbing, gear), alpha=0.2
    ):
        topics = ",".join(_ITEM_NAMES[i] for i in found_pattern)
        print(f"  query hit [{topics}]: {sorted(members)}")


if __name__ == "__main__":
    main()
