"""Check-in scenario: groups of friends who frequent the same places.

This is the paper's Brightkite/Gowalla use case (Section 7): a friendship
network where each user's database holds one transaction per period — the
set of places checked into during that period. A theme community is a
group of friends who frequently visit the same set of locations.

The script generates a check-in network with planted hangout groups, mines
theme communities, and prints the recovered groups with their favourite
places.

Run:  python examples/checkin_communities.py
"""

from __future__ import annotations

from repro import ThemeCommunityFinder, generate_checkin_network, network_statistics


def main() -> None:
    network = generate_checkin_network(
        num_users=150,
        num_locations=40,
        num_groups=10,
        group_size=7,
        periods=25,
        visit_probability=0.65,
        seed=42,
    )
    stats = network_statistics(network, count_triangles_too=False)
    print("check-in database network")
    print(f"  users:        {stats.num_vertices}")
    print(f"  friendships:  {stats.num_edges}")
    print(f"  periods:      {stats.num_transactions} transactions total")
    print(f"  places:       {stats.num_items_unique}")
    print()

    finder = ThemeCommunityFinder(network)
    communities = finder.find_communities(
        alpha=0.3, max_length=3, min_size=3
    )
    print(f"found {len(communities)} theme communities at alpha=0.3")
    print()

    multi_place = [c for c in communities if len(c.pattern) >= 2]
    print(f"communities with a multi-place theme: {len(multi_place)}")
    for community in multi_place[:8]:
        places = ", ".join(map(str, community.theme_labels(network)))
        users = ", ".join(
            map(str, community.member_labels(network)[:6])
        )
        more = " ..." if community.size > 6 else ""
        print(f"  [{places}]")
        print(f"      {community.size} friends: {users}{more}")

    # Overlap analysis: the same user can belong to communities with
    # different themes (the overlapping-communities property the paper
    # emphasizes).
    overlaps = 0
    for i, a in enumerate(communities):
        for b in communities[i + 1:]:
            if a.pattern != b.pattern and a.overlap(b) > 0:
                overlaps += 1
    print()
    print(f"pairs of overlapping communities with different themes: {overlaps}")


if __name__ == "__main__":
    main()
