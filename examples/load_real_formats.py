"""Loading the paper's real dataset formats.

The evaluation datasets (Brightkite, Gowalla, AMINER) are public downloads
in two well-known formats; this script loads bundled miniature files in
those exact formats and runs the pipeline on them, so swapping in the real
dumps is a one-line path change:

- SNAP check-in format:   https://snap.stanford.edu/data/loc-brightkite.html
- AMINER citation format: https://aminer.org/citation  (v2)

Run:  python examples/load_real_formats.py
"""

from __future__ import annotations

from pathlib import Path

from repro import ThemeCommunityFinder, network_statistics
from repro.datasets.loaders import (
    load_aminer_network,
    load_snap_checkin_network,
)

DATA = Path(__file__).parent / "data"


def checkin_demo() -> None:
    network = load_snap_checkin_network(
        DATA / "mini_checkin_edges.txt",
        DATA / "mini_checkins.txt",
        period_days=2,
    )
    stats = network_statistics(network, count_triangles_too=False)
    print("SNAP check-in format:")
    print(f"  {stats.as_row()}")
    communities = ThemeCommunityFinder(network).find_communities(
        alpha=0.2, max_length=2
    )
    for community in communities[:5]:
        places = ",".join(map(str, community.theme_labels(network)))
        users = sorted(map(str, community.member_labels(network)))
        print(f"  [{places}] -> users {users}")
    print()


def aminer_demo() -> None:
    network = load_aminer_network(DATA / "mini_aminer.txt")
    stats = network_statistics(network, count_triangles_too=False)
    print("AMINER citation format:")
    print(f"  {stats.as_row()}")
    communities = ThemeCommunityFinder(network).find_communities(
        alpha=0.3, max_length=3
    )
    for community in communities[:5]:
        keywords = ",".join(map(str, community.theme_labels(network)))
        authors = sorted(map(str, community.member_labels(network)))
        print(f"  [{keywords}] -> {authors}")


def main() -> None:
    checkin_demo()
    aminer_demo()


if __name__ == "__main__":
    main()
