"""Co-author case study — the Section 7.4 / Table 4 / Figure 6 scenario.

The paper's AMINER case study finds groups of collaborating scholars whose
shared research interest is a set of keywords, shows that senior authors
appear in several overlapping communities with different themes, and that
narrowing a theme (adding a keyword) shrinks its community (Theorem 5.1).

This script reproduces all three observations on the AMINER surrogate:
build a TC-Tree warehouse, query it, and print Table-4-style keyword sets
with their author groups.

Run:  python examples/coauthor_case_study.py
"""

from __future__ import annotations

from repro import ThemeCommunityWarehouse, generate_coauthor_network


def main() -> None:
    network = generate_coauthor_network(
        num_authors=120,
        num_topics=6,
        keywords_per_topic=4,
        num_keywords=60,
        authors_per_topic=30,
        num_papers=400,
        hyper_paper_authors=15,
        seed=7,
    )
    print(f"co-author network: {network}")

    warehouse = ThemeCommunityWarehouse.build(network, max_length=3)
    low, high = warehouse.alpha_range()
    print(
        f"TC-Tree: {warehouse.num_indexed_trusses} maximal pattern "
        f"trusses indexed, non-trivial alpha range [{low}, {high:.3g})"
    )
    print()

    # Table 4-style report: the largest multi-keyword theme communities.
    communities = warehouse.communities(alpha=0.25, min_size=4)
    themed = [c for c in communities if len(c.pattern) >= 2][:6]
    print("largest multi-keyword theme communities (alpha=0.25):")
    for i, community in enumerate(themed, start=1):
        keywords = ", ".join(map(str, community.theme_labels(network)))
        authors = ", ".join(map(str, community.member_labels(network)[:5]))
        more = " ..." if community.size > 5 else ""
        print(f"  p{i}: {{{keywords}}}")
        print(f"      {community.size} authors: {authors}{more}")
    print()

    # Theorem 5.1 in action: narrowing a theme shrinks its community.
    if themed:
        base = themed[0]
        wider = warehouse.query(pattern=base.pattern, alpha=0.25)
        for truss in sorted(wider.trusses, key=lambda t: len(t.pattern)):
            keywords = ",".join(
                str(network.item_label(i)) for i in truss.pattern
            )
            print(
                f"  theme {{{keywords}}}: truss has "
                f"{truss.num_vertices} authors, {truss.num_edges} edges"
            )
        print("  (longer themes always give smaller trusses — Thm 5.1)")
    print()

    # Figure 6's overlap phenomenon: authors active in several themes.
    author_themes: dict[str, set] = {}
    for community in communities:
        for label in community.member_labels(network):
            author_themes.setdefault(str(label), set()).add(community.pattern)
    busiest = sorted(
        author_themes.items(), key=lambda kv: -len(kv[1])
    )[:5]
    print("authors spanning the most themes (the 'Jiawei Han effect'):")
    for author, themes in busiest:
        print(f"  {author}: member of communities for {len(themes)} themes")


if __name__ == "__main__":
    main()
