"""Quickstart: mine theme communities from a small database network.

Builds the paper's Figure 1 toy network (9 vertices, two planted themes),
finds all theme communities with the exact TCFI algorithm, and shows how
the answer changes with the cohesion threshold α.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ThemeCommunityFinder, toy_database_network


def main() -> None:
    network = toy_database_network()
    print(f"database network: {network}")
    print(f"item universe: "
          f"{[network.item_label(i) for i in network.item_universe()]}")
    print()

    finder = ThemeCommunityFinder(network)

    for alpha in (0.1, 0.35, 0.45):
        communities = finder.find_communities(alpha=alpha)
        print(f"alpha = {alpha}: {len(communities)} theme communities")
        for community in communities:
            theme = ",".join(map(str, community.theme_labels(network)))
            members = sorted(community.member_labels(network), key=str)
            print(f"  theme [{theme}]  members {members}")
        print()

    # The three methods agree where they should: TCFA and TCFI are both
    # exact; the TCS baseline trades accuracy for speed via its frequency
    # pre-filter epsilon.
    exact = finder.find(alpha=0.1, method="tcfi")
    apriori = finder.find(alpha=0.1, method="tcfa")
    scanner = finder.find(alpha=0.1, method="tcs", epsilon=0.3)
    print(f"TCFI found {exact.num_patterns} maximal pattern trusses")
    print(f"TCFA agrees: {exact.same_trusses_as(apriori)}")
    print(
        f"TCS (epsilon=0.3) found {scanner.num_patterns} "
        f"(subset of exact: {scanner.is_subset_of(exact)})"
    )


if __name__ == "__main__":
    main()
