"""Recovery quality — do mined theme communities match the planted ones?

Not a numbered paper figure, but the end-to-end sanity behind the case
study: the surrogate generators plant hangout groups / research topics,
so the miner's output can be scored against ground truth (best-Jaccard
matching). This also doubles as a quality gate on the generators — if a
refactor breaks the planted signal, this benchmark fails.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.finder import ThemeCommunityFinder
from repro.datasets.checkin import generate_checkin_network
from repro.datasets.coauthor import generate_coauthor_network
from repro.datasets.ground_truth import evaluate_recovery
from benchmarks.conftest import write_report


def test_recovery_checkin_and_coauthor(benchmark, report_dir):
    checkin_network, checkin_planted = generate_checkin_network(
        num_users=80,
        num_locations=24,
        num_groups=6,
        group_size=6,
        periods=25,
        visit_probability=0.75,
        seed=11,
        return_ground_truth=True,
    )
    coauthor_network, coauthor_planted = generate_coauthor_network(
        num_authors=80,
        num_topics=5,
        num_papers=250,
        keywords_per_topic=4,
        num_keywords=40,
        seed=3,
        return_ground_truth=True,
    )

    def mine_both():
        checkin = ThemeCommunityFinder(checkin_network).find_communities(
            alpha=0.2, max_length=3
        )
        coauthor = ThemeCommunityFinder(coauthor_network).find_communities(
            alpha=0.2, max_length=3
        )
        return checkin, coauthor

    checkin_mined, coauthor_mined = benchmark.pedantic(
        mine_both, rounds=1, iterations=1
    )

    rows = []
    for name, planted, mined in (
        ("checkin", checkin_planted, checkin_mined),
        ("coauthor", coauthor_planted, coauthor_mined),
    ):
        report = evaluate_recovery(planted, mined, threshold=0.5)
        rows.append(
            {
                "dataset": name,
                "planted": report.num_planted,
                "mined": report.num_mined,
                "avg_best_jaccard": round(report.average_best_jaccard, 3),
                "recovery_rate": round(report.recovery_rate, 3),
            }
        )
    write_report(
        report_dir,
        "recovery_quality",
        format_table(rows, title="Planted-community recovery (alpha=0.2)"),
    )
    for row in rows:
        assert row["avg_best_jaccard"] > 0.4
