"""Extension benchmark — theme communities in edge database networks.

The paper's future-work direction (Section 8), implemented in
:mod:`repro.edgenet`. The workload is a co-author-style network where
each *edge* holds the keyword transactions of the papers that pair wrote
together; mining finds edge-theme communities.
"""

from __future__ import annotations

import random

from repro.bench.reporting import format_table
from repro.edgenet.finder import edge_tcfi
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.graphs.generators import powerlaw_cluster_graph
from benchmarks.conftest import write_report


def _edge_workload(seed: int = 17) -> EdgeDatabaseNetwork:
    """Edge databases planted on a clustered graph: each dense region
    shares a keyword theme on its internal edges."""
    rng = random.Random(seed)
    graph = powerlaw_cluster_graph(120, 3, 0.7, seed=seed)
    network = EdgeDatabaseNetwork()
    themes = [(0, 1), (2, 3), (4, 5)]
    for u, v in graph.iter_edges():
        theme = themes[(min(u, v) * 7) % len(themes)]
        for _ in range(rng.randint(2, 5)):
            transaction = set()
            for item in theme:
                if rng.random() < 0.7:
                    transaction.add(item)
            transaction.add(6 + rng.randrange(10))  # noise keyword
            network.add_transaction(u, v, transaction)
    return network


def test_edgenet_mining(benchmark, report_dir):
    network = _edge_workload()

    result = benchmark(edge_tcfi, network, 0.3, 3)

    rows = [
        {
            "alpha": 0.3,
            "NP": result.num_patterns,
            "NV": result.num_vertices,
            "NE": result.num_edges,
            "max_pattern_length": result.max_pattern_length(),
        }
    ]
    write_report(
        report_dir,
        "edgenet",
        format_table(
            rows,
            title="Edge database network mining (future-work extension)",
        ),
    )
    assert result.num_patterns > 0

    # Anti-monotonicity carries over to the edge model.
    tighter = edge_tcfi(network, 0.6, 3)
    assert set(tighter) <= set(result)
