"""Extension benchmark — theme communities in edge database networks.

The paper's future-work direction (Section 8), implemented in
:mod:`repro.edgenet`. The workload is a co-author-style network where
each *edge* holds the keyword transactions of the papers that pair wrote
together; mining finds edge-theme communities.
"""

from __future__ import annotations

import random
import statistics
import time

from repro.bench.fleet import median_seconds
from repro.bench.reporting import format_table
from repro.edgenet.finder import edge_tcfi
from repro.edgenet.index import build_edge_tc_tree
from repro.edgenet.network import EdgeDatabaseNetwork
from repro.graphs.generators import powerlaw_cluster_graph
from benchmarks.conftest import write_report


def run(config):
    """Fleet entry point (area: edgenet): edge-theme mining plus the
    cold/cold A/B of the CSR carrier/projection engine against the
    legacy dict-of-sets edge-tree build (the pytest cases' workloads)."""
    reps = int(config.get("reps", 3))
    max_length = int(config.get("max_length", 3))
    mine_nodes = int(config.get("mine_nodes", 120))
    build_nodes = int(config.get("build_nodes", 400))
    mining_network = _edge_workload(nodes=mine_nodes)
    mining_s = median_seconds(
        lambda: edge_tcfi(mining_network, 0.3, max_length), reps
    )
    # Cold/cold A/B: each single-shot build gets a freshly constructed
    # network so neither side inherits warm caches.
    legacy_times, engine_times = [], []
    trees = {}
    for _ in range(reps):
        for side in ("legacy", "engine"):  # interleaved A/B rounds
            network = _dense_edge_workload(nodes=build_nodes)
            start = time.perf_counter()
            if side == "legacy":
                trees[side] = build_edge_tc_tree(
                    network, max_length=max_length, backend="legacy"
                )
                legacy_times.append(time.perf_counter() - start)
            else:
                trees[side] = build_edge_tc_tree(
                    network, max_length=max_length
                )
                engine_times.append(time.perf_counter() - start)
    assert trees["engine"].patterns() == trees["legacy"].patterns()
    legacy_s = statistics.median(legacy_times)
    engine_s = statistics.median(engine_times)
    return {
        "medians": {
            "mining_s": mining_s,
            "legacy_build_s": legacy_s,
            "engine_build_s": engine_s,
        },
        "reps": reps,
        "meta": {
            "speedup": round(legacy_s / engine_s, 3),
            "build_edges": _dense_edge_workload(nodes=build_nodes).num_edges,
            "tree_nodes": trees["engine"].num_nodes,
        },
    }


def _edge_workload(seed: int = 17, nodes: int = 120) -> EdgeDatabaseNetwork:
    """Edge databases planted on a clustered graph: each dense region
    shares a keyword theme on its internal edges."""
    rng = random.Random(seed)
    graph = powerlaw_cluster_graph(nodes, 3, 0.7, seed=seed)
    network = EdgeDatabaseNetwork()
    themes = [(0, 1), (2, 3), (4, 5)]
    for u, v in graph.iter_edges():
        theme = themes[(min(u, v) * 7) % len(themes)]
        for _ in range(rng.randint(2, 5)):
            transaction = set()
            for item in theme:
                if rng.random() < 0.7:
                    transaction.add(item)
            transaction.add(6 + rng.randrange(10))  # noise keyword
            network.add_transaction(u, v, transaction)
    return network


def test_edgenet_mining(benchmark, report_dir):
    network = _edge_workload()

    result = benchmark(edge_tcfi, network, 0.3, 3)

    rows = [
        {
            "alpha": 0.3,
            "NP": result.num_patterns,
            "NV": result.num_vertices,
            "NE": result.num_edges,
            "max_pattern_length": result.max_pattern_length(),
        }
    ]
    write_report(
        report_dir,
        "edgenet",
        format_table(
            rows,
            title="Edge database network mining (future-work extension)",
        ),
    )
    assert result.num_patterns > 0

    # Anti-monotonicity carries over to the edge model.
    tighter = edge_tcfi(network, 0.6, 3)
    assert set(tighter) <= set(result)


def _dense_edge_workload(seed: int = 29, nodes: int = 400) -> EdgeDatabaseNetwork:
    """A dense edge workload whose theme networks clear the CSR cutover:
    every edge's transactions draw from a shared 6-item vocabulary with
    high coverage, so single items (and most pairs) induce theme
    networks of several hundred edges — the regime the carrier/projection
    engine is built for."""
    rng = random.Random(seed)
    graph = powerlaw_cluster_graph(nodes, 3, 0.6, seed=seed)
    network = EdgeDatabaseNetwork()
    for u, v in graph.iter_edges():
        for _ in range(5):
            transaction = {i for i in range(6) if rng.random() < 0.9}
            transaction.add(6 + rng.randrange(8))
            network.add_transaction(u, v, transaction)
    return network


def test_edge_tc_tree_build(benchmark, report_dir):
    """Edge TC-Tree construction on the CSR carrier/projection engine.

    The A/B comparison in the report is **cold/cold**: each single-shot
    pass builds on a freshly constructed network object, so neither side
    inherits the other's warm caches (frequency memos, the network CSR,
    its triangle index). The benchmark fixture separately measures the
    steady-state engine build (the ``repro edge-index`` default).
    """
    start = time.perf_counter()
    oracle = build_edge_tc_tree(
        _dense_edge_workload(), max_length=3, backend="legacy"
    )
    legacy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    engine_tree = build_edge_tc_tree(_dense_edge_workload(), max_length=3)
    engine_seconds = time.perf_counter() - start

    network = _dense_edge_workload()
    tree = benchmark(build_edge_tc_tree, network, 3)

    assert tree.patterns() == oracle.patterns()

    rows = [
        {
            "|E|": network.num_edges,
            "items": len(network.item_universe()),
            "nodes": tree.num_nodes,
            "legacy_s": round(legacy_seconds, 3),
            "engine_s": round(engine_seconds, 3),
            "speedup": round(legacy_seconds / max(engine_seconds, 1e-9), 2),
        }
    ]
    write_report(
        report_dir,
        "edgenet_build",
        format_table(
            rows,
            title="Edge TC-Tree build: CSR carrier/projection engine "
                  "vs legacy oracle",
        ),
    )
    assert engine_tree.patterns() == oracle.patterns()
