"""Figure 5 — TC-Tree query performance (QBA and QBP).

Paper: (a-d) query-by-alpha — both query time and retrieved nodes (RN)
decrease as α_q grows; (e-h) query-by-pattern — both increase with query
pattern length. Query times are averaged over repeated runs, as in the
paper (1000 runs there, fewer here).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    experiment_fig5_qba,
    experiment_fig5_qbp,
    experiment_table3,
)
from repro.bench.plots import ascii_plot
from repro.index.query import query_by_alpha
from benchmarks.conftest import write_report


#: All four datasets, as in the paper's panels (a-d) / (e-h).
DATASETS = ("BK", "GW", "AMINER", "SYN")


@pytest.fixture(scope="module")
def trees():
    _, _, built = experiment_table3(
        scale="tiny", datasets=DATASETS, max_length=3
    )
    return built


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_query_by_alpha(benchmark, report_dir, trees, dataset):
    tree = trees[dataset]
    rows, report = experiment_fig5_qba(tree, dataset, repeats=5)
    chart = ascii_plot(
        [r["alpha"] for r in rows],
        {
            "query_time_s": [r["seconds"] for r in rows],
            "retrieved_nodes": [r["retrieved_nodes"] for r in rows],
        },
        title=f"Figure 5 (QBA) shape on {dataset}",
    )
    write_report(report_dir, f"fig5_qba_{dataset}", report + "\n\n" + chart)

    # RN decreases monotonically in α_q — paper panels (a-d).
    rn = [r["retrieved_nodes"] for r in rows]
    assert rn == sorted(rn, reverse=True)
    assert rn[-1] == 0  # the sweep ends when the answer is empty

    # The benchmarked unit: one full-index QBA at α = 0 (the worst case).
    answer = benchmark(query_by_alpha, tree, 0.0)
    assert answer.retrieved_nodes == tree.num_nodes


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_query_by_pattern(benchmark, report_dir, trees, dataset):
    tree = trees[dataset]
    rows, report = experiment_fig5_qbp(
        tree, dataset, patterns_per_length=5, repeats=5
    )
    write_report(report_dir, f"fig5_qbp_{dataset}", report)

    # RN grows with query pattern length — paper panels (e-h): a longer
    # query pattern has more sub-patterns to retrieve.
    rn = [r["retrieved_nodes"] for r in rows]
    assert rn == sorted(rn)

    # Benchmarked unit: QBP with the deepest indexed pattern.
    deepest = max(tree.patterns(), key=len)
    from repro.index.query import query_by_pattern

    answer = benchmark(query_by_pattern, tree, deepest)
    assert answer.retrieved_nodes >= len(deepest)
