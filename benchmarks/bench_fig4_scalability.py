"""Figure 4 — scalability vs #sampled edges at α = 0 (worst case).

Paper: time cost, NP, NV/NP, NE/NP over growing BFS samples; TCFI scales
best and is orders of magnitude faster than TCS/TCFA on the larger
samples; maximal pattern trusses stay small local subgraphs (NV/NP and
NE/NP stay bounded).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import experiment_fig4
from benchmarks.conftest import write_report

SIZES = (50, 100, 200, 400)


@pytest.mark.parametrize("dataset", ["BK", "GW", "AMINER"])
def test_fig4_scalability(benchmark, report_dir, dataset):
    rows, report = benchmark.pedantic(
        experiment_fig4,
        kwargs={
            "dataset": dataset,
            "scale": "small",
            "sizes": SIZES,
            "methods": ("tcfi", "tcfa", "tcs"),
            "epsilon": 0.2,
            "max_length": 2,
        },
        rounds=1,
        iterations=1,
    )
    write_report(report_dir, f"fig4_{dataset}", report)

    tcfi_rows = [r for r in rows if r["run"] == "tcfi"]
    tcfa_rows = [r for r in rows if r["run"] == "tcfa"]

    # NP grows with sample size (more edges, more trusses) — paper (b,f,j).
    np_series = [r["NP"] for r in tcfi_rows]
    assert np_series == sorted(np_series)

    # Exactness holds at every size.
    for fi, fa in zip(tcfi_rows, tcfa_rows):
        assert fi["NP"] == fa["NP"]

    # Trusses remain small local subgraphs — paper (c-d,g-h,k-l): the mean
    # truss size is far below the sample size.
    largest = tcfi_rows[-1]
    if largest["NP"]:
        assert largest["NV/NP"] < largest["edges"]

    # TCFI is never slower than TCFA on the largest sample (the paper's
    # headline speedup; at our scale the gap is smaller but the ordering
    # must hold).
    assert tcfi_rows[-1]["seconds"] <= tcfa_rows[-1]["seconds"] * 1.5
