"""Table 3 — TC-Tree indexing performance.

Paper: indexing time, peak memory, and #nodes for BK/GW/AMINER/SYN.
Ours: the same three measurements on the surrogate datasets; the benchmark
times one full TC-Tree build per dataset.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table3
from benchmarks.conftest import write_report


def test_table3_tc_tree_indexing(benchmark, report_dir):
    rows, report, trees = benchmark.pedantic(
        experiment_table3,
        kwargs={"scale": "tiny", "max_length": 3},
        rounds=1,
        iterations=1,
    )
    write_report(report_dir, "table3", report)

    assert len(rows) == 4
    for row in rows:
        # Every dataset indexes at least one maximal pattern truss and the
        # build reports time and memory.
        assert row["nodes"] > 0
        assert row["seconds"] > 0
        assert row["peak_MB"] > 0

    # #nodes equals #maximal pattern trusses: cross-check one dataset
    # against direct mining at α = 0.
    from repro.bench.experiments import make_bk
    from repro.core.tcfi import tcfi

    mined = tcfi(make_bk("tiny"), 0.0, max_length=3)
    bk_row = next(r for r in rows if r["dataset"] == "BK")
    assert bk_row["nodes"] == mined.num_patterns
