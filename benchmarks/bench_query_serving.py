"""Query serving: snapshot engine vs the seed load-JSON-per-query path.

The seed CLI re-parsed the whole JSON warehouse document on every
``repro query`` invocation, so query latency was dominated by
deserialization rather than Algorithm 5 traversal. The serving layer
loads a binary snapshot's offset table once and decodes nodes lazily
behind an LRU cache; this benchmark quantifies the split on the dense
benchmark network:

- **cold**: snapshot open (TOC parse) and the first query;
- **seed**: ``ThemeCommunityWarehouse.load(json) + query`` per query —
  what every pre-serving CLI invocation paid;
- **warm**: repeated queries against one live engine — the server path.

The acceptance bar is warm ≥ 5× faster than seed per query. Metrics
(cold-load, warm p50/p95 latency, queries/sec, speedup) go to
``benchmarks/reports/query_serving.json`` for the CI artifact.
"""

from __future__ import annotations

import json
import statistics
import tempfile
import time
from pathlib import Path

from repro.index.warehouse import ThemeCommunityWarehouse
from repro.serve.engine import IndexedWarehouse
from benchmarks.conftest import REPORTS_DIR, make_dense_network, write_report
from repro.bench.reporting import format_table

#: Rounds of the query mix timed against the warm engine.
WARM_ROUNDS = 15


def _query_mix(tree) -> list[tuple[tuple[int, ...] | None, float]]:
    """A serving-shaped mix: QBA at several thresholds + QBP prefixes."""
    high = tree.max_alpha()
    items = sorted({item for p in tree.patterns() for item in p})
    mix: list[tuple[tuple[int, ...] | None, float]] = [
        (None, 0.25 * high),
        (None, 0.5 * high),
        (None, 0.75 * high),
        (None, 0.0),
    ]
    if items:
        mix.append((tuple(items[:1]), 0.0))
        mix.append((tuple(items[:2]), 0.25 * high))
    return mix


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def measure_serving(
    network, work_dir: Path, warm_rounds: int = WARM_ROUNDS
) -> tuple[dict[str, object], IndexedWarehouse]:
    """Cold / seed / warm measurements of one serving workload.

    Shared by the pytest case and the fleet ``run`` entry point; the
    caller owns (and must close) the returned warm engine.
    """
    warehouse = ThemeCommunityWarehouse.build(network)
    json_path = work_dir / "dense.tctree.json"
    snap_path = work_dir / "dense.tcsnap"
    warehouse.save(json_path)
    warehouse.save_snapshot(snap_path)
    mix = _query_mix(warehouse.tree)

    # -- cold: TOC parse + first query --------------------------------
    start = time.perf_counter()
    engine = IndexedWarehouse.open(snap_path)
    cold_open_seconds = time.perf_counter() - start
    start = time.perf_counter()
    first = engine.query(pattern=mix[0][0], alpha=mix[0][1])
    cold_first_query_seconds = time.perf_counter() - start
    assert first.retrieved_nodes >= 0

    # -- seed path: load the JSON document for every query ------------
    seed_samples: list[float] = []
    for pattern, alpha in mix:
        start = time.perf_counter()
        loaded = ThemeCommunityWarehouse.load(json_path)
        answer = loaded.query(pattern=pattern, alpha=alpha)
        seed_samples.append(time.perf_counter() - start)
        # Parity guard: the serving path answers exactly the same.
        served = engine.query(pattern=pattern, alpha=alpha)
        assert served.retrieved_nodes == answer.retrieved_nodes
        assert served.visited_nodes == answer.visited_nodes
        assert served.patterns() == answer.patterns()

    # -- warm path: repeated queries against the live engine ----------
    warm_samples: list[float] = []
    for _ in range(warm_rounds):
        for pattern, alpha in mix:
            start = time.perf_counter()
            engine.query(pattern=pattern, alpha=alpha)
            warm_samples.append(time.perf_counter() - start)

    warm_mean = statistics.mean(warm_samples)
    seed_mean = statistics.mean(seed_samples)
    metrics: dict[str, object] = {
        "network": "dense",
        "indexed_trusses": engine.num_indexed_trusses,
        "snapshot_bytes": snap_path.stat().st_size,
        "json_bytes": json_path.stat().st_size,
        "query_mix": [
            {"pattern": list(p) if p else None, "alpha": a} for p, a in mix
        ],
        "cold_open_seconds": cold_open_seconds,
        "cold_first_query_seconds": cold_first_query_seconds,
        "seed_per_query_seconds": seed_mean,
        "warm_p50_seconds": _percentile(warm_samples, 0.5),
        "warm_p95_seconds": _percentile(warm_samples, 0.95),
        "queries_per_second": 1.0 / warm_mean,
        "speedup_vs_seed": seed_mean / warm_mean,
        "cache": engine.stats()["cache"],
    }
    return metrics, engine


def _write_serving_reports(report_dir: Path, metrics: dict[str, object]) -> None:
    rows = [
        {
            "cold_open_ms": round(metrics["cold_open_seconds"] * 1e3, 3),
            "cold_first_query_ms": round(
                metrics["cold_first_query_seconds"] * 1e3, 3
            ),
            "seed_per_query_ms": round(
                metrics["seed_per_query_seconds"] * 1e3, 3
            ),
            "warm_p50_ms": round(metrics["warm_p50_seconds"] * 1e3, 3),
            "warm_p95_ms": round(metrics["warm_p95_seconds"] * 1e3, 3),
            "queries_per_sec": round(metrics["queries_per_second"], 1),
            "speedup": round(metrics["speedup_vs_seed"], 1),
        }
    ]
    write_report(
        report_dir,
        "query_serving",
        format_table(
            rows, title="Query serving: warm snapshot vs JSON-per-query"
        ),
    )
    (Path(report_dir) / "query_serving.json").write_text(
        json.dumps(metrics, indent=2) + "\n", encoding="utf-8"
    )


def run(config):
    """Fleet entry point (area: serving): cold open, seed-per-query, and
    warm p50/p95 latencies of the snapshot engine, plus the 5× bar."""
    warm_rounds = int(config.get("warm_rounds", WARM_ROUNDS))
    network = make_dense_network(**config.get("network", {}))
    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        metrics, engine = measure_serving(
            network, Path(tmp), warm_rounds=warm_rounds
        )
        engine.close()
    _write_serving_reports(REPORTS_DIR, metrics)
    speedup = metrics["speedup_vs_seed"]
    assert speedup >= 5.0, f"warm speedup {speedup:.1f}x < 5x"
    return {
        "medians": {
            "cold_open_s": metrics["cold_open_seconds"],
            "seed_per_query_s": metrics["seed_per_query_seconds"],
            "warm_p50_s": metrics["warm_p50_seconds"],
            "warm_p95_s": metrics["warm_p95_seconds"],
        },
        "reps": warm_rounds,
        "meta": {
            "queries_per_second": round(metrics["queries_per_second"], 1),
            "speedup_vs_seed": round(speedup, 1),
            "indexed_trusses": metrics["indexed_trusses"],
        },
    }


def test_query_serving(benchmark, report_dir, tmp_path, dense_network):
    metrics, engine = measure_serving(dense_network, tmp_path)
    _write_serving_reports(report_dir, metrics)

    speedup = metrics["speedup_vs_seed"]
    # The acceptance bar: serving from a warm engine must beat the seed
    # load-per-query path by at least 5x on the dense network.
    assert speedup >= 5.0, f"warm speedup {speedup:.1f}x < 5x"

    mix = [
        (tuple(q["pattern"]) if q["pattern"] else None, q["alpha"])
        for q in metrics["query_mix"]
    ]

    def run_mix() -> None:
        for pattern, alpha in mix:
            engine.query(pattern=pattern, alpha=alpha)

    benchmark(run_mix)
    engine.close()
