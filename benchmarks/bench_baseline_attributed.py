"""Baseline comparison — flattened attributed model vs theme communities.

Not a numbered figure, but the paper's core motivating argument
(Section 1, Challenge 1): collapsing vertex databases to flat attribute
sets "wastes the valuable information of item co-occurrence and pattern
frequency". This benchmark runs the CoPaM/ABACUS-style baseline next to
TCFI and measures the false-theme rate — the fraction of baseline
communities whose pattern is actually rare among the members.
"""

from __future__ import annotations

from repro.baselines.attributed import (
    attributed_communities,
    false_theme_rate,
)
from repro.bench.experiments import make_bk
from repro.bench.reporting import format_table
from repro.core.finder import ThemeCommunityFinder
from benchmarks.conftest import write_report


def test_baseline_attributed_information_loss(benchmark, report_dir):
    network = make_bk("tiny")

    def run():
        baseline = attributed_communities(
            network, k=3, min_vertices=3, max_length=2
        )
        themed = ThemeCommunityFinder(network).find_communities(
            alpha=0.3, max_length=2
        )
        return baseline, themed

    baseline, themed = benchmark.pedantic(run, rounds=1, iterations=1)
    loss = false_theme_rate(network, baseline, frequency_threshold=0.2)

    rows = [
        {
            "method": "attributed (flattened)",
            "communities": len(baseline),
            "false_theme_rate": round(loss, 3),
        },
        {
            "method": "theme communities (alpha=0.3)",
            "communities": len(themed),
            "false_theme_rate": 0.0,
        },
    ]
    write_report(
        report_dir,
        "baseline_attributed",
        format_table(
            rows,
            title="Challenge 1 quantified — flattening loses frequency "
            "information (BK tiny)",
        ),
    )
    # The flattened baseline must over-report: some of its communities are
    # false themes, which is exactly the paper's argument for database
    # networks over vertex-attributed ones.
    assert len(baseline) > 0
    assert loss > 0.0
