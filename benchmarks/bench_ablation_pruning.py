"""Ablation — the two pruning layers of the mining stack.

DESIGN.md calls out two design choices worth ablating:

1. Apriori candidate pruning (TCS → TCFA): restrict candidates to unions
   of qualified patterns instead of enumerating vertex databases.
2. Intersection pruning (TCFA → TCFI): verify candidates inside the
   intersection of parent trusses instead of the whole network.

The paper reports TCFI ≫ TCFA ≫ TCS at scale; this benchmark quantifies
each layer separately at our scale and asserts exactness is unaffected.
"""

from __future__ import annotations

from repro.bench.experiments import experiment_ablation_pruning, make_bk
from repro.bench.runner import run_mining
from benchmarks.conftest import write_report


def test_ablation_pruning_layers(benchmark, report_dir):
    rows, report = benchmark.pedantic(
        experiment_ablation_pruning,
        kwargs={"dataset": "BK", "scale": "tiny", "alphas": (0.0, 0.3)},
        rounds=1,
        iterations=1,
    )
    write_report(report_dir, "ablation_pruning", report)

    by_key = {(r["run"], r["alpha"]): r for r in rows}
    for alpha in (0.0, 0.3):
        # Both exact layers agree; removing layers never changes results,
        # only cost (TCS here runs with ε = 0.1, so it may lose trusses at
        # α = 0 — that is the measured accuracy cost of its pre-filter).
        assert (
            by_key[("tcfa", alpha)]["NP"] == by_key[("tcfi", alpha)]["NP"]
        )


def test_ablation_intersection_speedup(benchmark, report_dir):
    """Direct TCFA-vs-TCFI timing on one workload (the paper's headline).

    At the paper's scale the gap is 100×; at tiny scale we only assert
    TCFI does not lose, and report the measured ratio.
    """
    network = make_bk("tiny")

    def both():
        fa = run_mining(network, "tcfa", 0.0, max_length=3)
        fi = run_mining(network, "tcfi", 0.0, max_length=3)
        return fa, fi

    fa, fi = benchmark.pedantic(both, rounds=1, iterations=1)
    write_report(
        report_dir,
        "ablation_intersection",
        "TCFA vs TCFI on BK (tiny), alpha=0, max_length=3\n"
        f"tcfa: {fa.seconds:.4f}s NP={fa.metrics['NP']}\n"
        f"tcfi: {fi.seconds:.4f}s NP={fi.metrics['NP']}\n"
        f"speedup: {fa.seconds / max(fi.seconds, 1e-9):.2f}x",
    )
    assert fa.metrics["NP"] == fi.metrics["NP"]
    assert fi.seconds <= fa.seconds * 1.5
