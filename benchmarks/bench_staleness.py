"""Serving staleness under churn: the live-index maintain→publish loop.

A warehouse that rebuilds from scratch on every change serves stale
answers for the whole rebuild; the live tier's claim is that the
staleness window collapses to *maintain* (incremental, reuse-heavy) plus
*publish* (one atomic reference swap), and that readers keep their
latency throughout. This driver runs the full overlay pipeline per
churn round against one engine with a concurrent reader:

1. **maintain** — ``apply_deltas`` (incremental) on the writer's tree;
2. **diff** — ``write_delta_snapshot`` of old vs new tree (the overlay
   a remote writer would ship);
3. **publish** — ``LiveIndex.apply_delta`` of that overlay file:
   re-apply to the serving tree + hot-swap the generation.

Reported medians: per-phase seconds, the end-to-end staleness window,
and reader p50 during churn. The acceptance bar is structural —
publication must be a small fraction of the window (the swap itself is
one reference assignment), and every reader answer must be attributable
to exactly one published generation.
"""

from __future__ import annotations

import copy
import statistics
import tempfile
import threading
import time
from pathlib import Path

from repro.index.tctree import build_tc_tree
from repro.index.updates import Delta, apply_deltas
from repro.serve.engine import IndexedWarehouse
from repro.serve.live import LiveIndex
from repro.serve.snapshot import write_delta_snapshot
from benchmarks.conftest import (
    REPORTS_DIR,
    make_dense_network,
    write_report,
)
from repro.bench.reporting import format_table

#: Churn rounds (generations published) per measurement.
ROUNDS = 5


def measure_staleness(
    network, work_dir: Path, rounds: int = ROUNDS
) -> dict[str, object]:
    """One churn run: maintain/diff/publish per round + reader latency."""
    network = copy.deepcopy(network)
    writer_tree = build_tc_tree(network, max_length=3)
    engine = IndexedWarehouse(tree=writer_tree)
    live = LiveIndex(engine, directory=work_dir)
    vertices = sorted(network.databases)

    reader_samples: list[float] = []
    generations_seen: set[int] = set()
    torn: list[str] = []
    stop = threading.Event()

    def reader() -> None:
        while not stop.is_set():
            start = time.perf_counter()
            answer = engine.query(pattern=None, alpha=0.0)
            reader_samples.append(time.perf_counter() - start)
            if answer.generation is None:
                torn.append("answer with no generation stamp")
                return
            generations_seen.add(answer.generation)

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()

    maintain_s: list[float] = []
    diff_s: list[float] = []
    publish_s: list[float] = []
    reused = 0
    candidates = 0
    try:
        for round_no in range(rounds):
            vertex = vertices[round_no % len(vertices)]
            deltas = [
                Delta.insert(vertex, [round_no % 4, 100 + round_no])
            ]
            start = time.perf_counter()
            result = apply_deltas(
                network, writer_tree, deltas,
                mode="incremental", max_length=3,
            )
            maintain_s.append(time.perf_counter() - start)
            reused += result.reused
            candidates += result.reuse_candidates

            overlay = work_dir / f"churn-{round_no:04d}.tcdelta"
            generation = engine.generation + 1
            start = time.perf_counter()
            write_delta_snapshot(
                writer_tree, result.tree, overlay,
                generation=generation,
                base_generation=engine.generation,
            )
            diff_s.append(time.perf_counter() - start)

            start = time.perf_counter()
            live.apply_delta(overlay)
            publish_s.append(time.perf_counter() - start)
            writer_tree = result.tree
    finally:
        stop.set()
        thread.join(timeout=10.0)

    assert not torn, torn[0]
    assert engine.generation == rounds + 1
    staleness = [m + d + p for m, d, p in zip(maintain_s, diff_s, publish_s)]
    metrics: dict[str, object] = {
        "rounds": rounds,
        "maintain_p50_seconds": statistics.median(maintain_s),
        "diff_p50_seconds": statistics.median(diff_s),
        "publish_p50_seconds": statistics.median(publish_s),
        "staleness_p50_seconds": statistics.median(staleness),
        "reader_p50_seconds": (
            statistics.median(reader_samples) if reader_samples else 0.0
        ),
        "reader_queries": len(reader_samples),
        "generations_seen": len(generations_seen),
        "reused_decompositions": reused,
        "reuse_candidates": candidates,
    }
    engine.close()
    return metrics


def _write_staleness_report(report_dir: Path, metrics: dict) -> None:
    rows = [
        {
            "phase": phase,
            "p50_ms": round(1000.0 * float(metrics[key]), 3),
        }
        for phase, key in (
            ("maintain", "maintain_p50_seconds"),
            ("diff", "diff_p50_seconds"),
            ("publish", "publish_p50_seconds"),
            ("staleness window", "staleness_p50_seconds"),
            ("reader query", "reader_p50_seconds"),
        )
    ]
    write_report(
        report_dir,
        "serving_staleness",
        format_table(
            rows,
            title=(
                f"Live-index staleness under churn "
                f"({metrics['rounds']} generations, "
                f"{metrics['reused_decompositions']}/"
                f"{metrics['reuse_candidates']} decompositions reused)"
            ),
        ),
    )


def run(config):
    """Fleet entry point (area: serving): the maintain→diff→publish
    staleness window per churn round, with a concurrent reader."""
    rounds = int(config.get("rounds", ROUNDS))
    network = make_dense_network(**config.get("network", {}))
    with tempfile.TemporaryDirectory(prefix="bench-staleness-") as tmp:
        metrics = measure_staleness(network, Path(tmp), rounds=rounds)
    _write_staleness_report(REPORTS_DIR, metrics)
    publish = float(metrics["publish_p50_seconds"])
    window = float(metrics["staleness_p50_seconds"])
    # Publication must not dominate the window: the swap is a reference
    # assignment, so applying + publishing an overlay has to be cheaper
    # than re-maintaining the index.
    assert publish < window, "publish dominates the staleness window"
    return {
        "medians": {
            "maintain_s": metrics["maintain_p50_seconds"],
            "diff_s": metrics["diff_p50_seconds"],
            "staleness_window_s": metrics["staleness_p50_seconds"],
            "reader_p50_s": metrics["reader_p50_seconds"],
        },
        "reps": rounds,
        "meta": {
            # Reported, not gated: publish races the reader for the GIL,
            # so its median is bimodal (~3x spread) — far beyond the
            # trend gate's 1.25x. The structural claim (publish is a
            # small fraction of the window) is asserted above instead.
            "publish_seconds": metrics["publish_p50_seconds"],
            "generations_seen": metrics["generations_seen"],
            "reader_queries": metrics["reader_queries"],
            "reused_decompositions": metrics["reused_decompositions"],
            "reuse_candidates": metrics["reuse_candidates"],
        },
    }


def test_staleness_under_churn(report_dir, tmp_path):
    network = make_dense_network(nodes=400, m=8)
    metrics = measure_staleness(network, tmp_path, rounds=3)
    _write_staleness_report(report_dir, metrics)
    assert metrics["generations_seen"] >= 1
    assert float(metrics["publish_p50_seconds"]) < float(
        metrics["staleness_p50_seconds"]
    )
