"""Warehouse persistence — save/load round-trip cost and index size.

Supports the Section 6 warehouse story: the index is built once and
shipped; loading must be much cheaper than rebuilding. The benchmark
times load and compares against build, and reports the on-disk size.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.bench.experiments import make_bk
from repro.bench.fleet import median_seconds
from repro.bench.reporting import format_table
from repro.index.warehouse import ThemeCommunityWarehouse
from benchmarks.conftest import write_report


def run(config):
    """Fleet entry point (area: serving): warehouse build / save / load
    round-trip cost and on-disk index size on the BK surrogate."""
    reps = int(config.get("reps", 3))
    scale = str(config.get("scale", "tiny"))
    max_length = int(config.get("max_length", 3))
    network = make_bk(scale)
    start = time.perf_counter()
    warehouse = ThemeCommunityWarehouse.build(network, max_length=max_length)
    build_seconds = time.perf_counter() - start
    with tempfile.TemporaryDirectory(prefix="bench-warehouse-") as tmp:
        path = Path(tmp) / "bk.tctree.json"
        save_s = median_seconds(lambda: warehouse.save(path), reps)
        size_bytes = path.stat().st_size
        load_s = median_seconds(lambda: ThemeCommunityWarehouse.load(path), reps)
    return {
        "medians": {
            "build_s": build_seconds,
            "save_s": save_s,
            "load_s": load_s,
        },
        "reps": reps,
        "meta": {
            "scale": scale,
            "index_bytes": size_bytes,
            "trusses": warehouse.num_indexed_trusses,
        },
    }


def test_warehouse_save_load(benchmark, report_dir, tmp_path):
    network = make_bk("tiny")

    start = time.perf_counter()
    warehouse = ThemeCommunityWarehouse.build(network, max_length=3)
    build_seconds = time.perf_counter() - start

    path = tmp_path / "bk.tctree.json"
    warehouse.save(path)
    size_kib = path.stat().st_size / 1024

    loaded = benchmark(ThemeCommunityWarehouse.load, path)

    assert loaded.tree.patterns() == warehouse.tree.patterns()
    rows = [
        {
            "build_seconds": round(build_seconds, 4),
            "index_KiB": round(size_kib, 1),
            "trusses": warehouse.num_indexed_trusses,
        }
    ]
    write_report(
        report_dir,
        "warehouse_io",
        format_table(rows, title="Warehouse persistence (BK tiny)"),
    )
