"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper via the
drivers in :mod:`repro.bench.experiments`, times a representative unit with
pytest-benchmark, and writes the full ASCII report to
``benchmarks/reports/`` so EXPERIMENTS.md can reference the measured
numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import experiments

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


def write_report(report_dir: Path, name: str, text: str) -> None:
    """Persist one experiment report (overwrites previous runs)."""
    (report_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def dense_network():
    """A dense few-item database network: large theme trusses, many
    decomposition levels — the regime the paper's datasets live in.
    Shared by bench_micro_core and bench_parallel_build."""
    from repro.datasets.synthetic import generate_synthetic_network
    from repro.graphs.generators import powerlaw_cluster_graph

    graph = powerlaw_cluster_graph(1400, 12, 0.85, seed=5)
    return generate_synthetic_network(
        num_items=4,
        num_seeds=2,
        mutation_rate=0.3,
        max_transactions=64,
        max_transaction_length=6,
        graph=graph,
        seed=5,
    )


@pytest.fixture(scope="session")
def bk_tiny():
    return experiments.make_bk("tiny")


@pytest.fixture(scope="session")
def gw_tiny():
    return experiments.make_gw("tiny")


@pytest.fixture(scope="session")
def aminer_tiny():
    return experiments.make_aminer("tiny")


@pytest.fixture(scope="session")
def syn_tiny():
    return experiments.make_syn("tiny")
