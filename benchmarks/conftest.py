"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper via the
drivers in :mod:`repro.bench.experiments`, times a representative unit with
pytest-benchmark, and writes the full ASCII report to
``benchmarks/reports/`` so EXPERIMENTS.md can reference the measured
numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import experiments

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


def write_report(report_dir: Path, name: str, text: str) -> None:
    """Persist one experiment report (overwrites previous runs)."""
    (report_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def bk_tiny():
    return experiments.make_bk("tiny")


@pytest.fixture(scope="session")
def gw_tiny():
    return experiments.make_gw("tiny")


@pytest.fixture(scope="session")
def aminer_tiny():
    return experiments.make_aminer("tiny")


@pytest.fixture(scope="session")
def syn_tiny():
    return experiments.make_syn("tiny")
