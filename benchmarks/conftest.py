"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper via the
drivers in :mod:`repro.bench.experiments`, times a representative unit with
pytest-benchmark, and writes the full ASCII report to
``benchmarks/reports/`` so EXPERIMENTS.md can reference the measured
numbers. The fleet (:mod:`repro.bench.fleet`) reuses the same workload
builders through each driver's ``run(config)`` entry point.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import experiments
from repro.bench.fleet import stamp_line

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


def write_report(report_dir: Path, name: str, text: str) -> None:
    """Persist one experiment report (overwrites previous runs).

    Every report opens with the fleet's environment stamp — producing
    git sha + timestamp — so an overwritten report still says which
    tree measured it.
    """
    Path(report_dir).mkdir(parents=True, exist_ok=True)
    (Path(report_dir) / f"{name}.txt").write_text(
        stamp_line() + "\n" + text + "\n", encoding="utf-8"
    )


def make_dense_network(
    nodes: int = 1400,
    m: int = 12,
    p: float = 0.85,
    seed: int = 5,
    num_items: int = 4,
    num_seeds: int = 2,
    mutation_rate: float = 0.3,
    max_transactions: int = 64,
    max_transaction_length: int = 6,
):
    """A dense few-item database network: large theme trusses, many
    decomposition levels — the regime the paper's datasets live in.
    The session fixture uses the full-size defaults; fleet profiles
    scale ``nodes``/``m`` down for smoke runs."""
    from repro.datasets.synthetic import generate_synthetic_network
    from repro.graphs.generators import powerlaw_cluster_graph

    graph = powerlaw_cluster_graph(nodes, m, p, seed=seed)
    return generate_synthetic_network(
        num_items=num_items,
        num_seeds=num_seeds,
        mutation_rate=mutation_rate,
        max_transactions=max_transactions,
        max_transaction_length=max_transaction_length,
        graph=graph,
        seed=seed,
    )


@pytest.fixture(scope="session")
def dense_network():
    """Shared by bench_micro_core and bench_parallel_build."""
    return make_dense_network()


@pytest.fixture(scope="session")
def bk_tiny():
    return experiments.make_bk("tiny")


@pytest.fixture(scope="session")
def gw_tiny():
    return experiments.make_gw("tiny")


@pytest.fixture(scope="session")
def aminer_tiny():
    return experiments.make_aminer("tiny")


@pytest.fixture(scope="session")
def syn_tiny():
    return experiments.make_syn("tiny")
