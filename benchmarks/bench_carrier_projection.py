"""Carrier-projection fast path: A/B against the re-enumeration oracle.

Not a paper figure — this is the regression guard for the PR 4 build
pipeline (``CSRGraph.project`` + derived triangle indexes + masked
carriers). It builds a dense mid-coverage TC-Tree — the regime where
every child carrier is a strict subset of the network, so the old code
either re-enumerated each carrier's triangles from scratch or re-peeled
the whole network per child — with projection enabled and with the
serial re-enumeration oracle, in interleaved rounds, asserts the trees
are **bit-identical** (exact thresholds, levels, frequencies), and
reports the medians.

Interpretation note: the oracle itself shares every other PR 4
improvement (masked carriers, merge-based enumeration, vectorized
engine loops), so the on/off delta isolates derivation alone. Against
the *PR 3 baseline* the projected build of this exact network measured
8.08 s → 5.02 s (×1.61) on the dev container — see README "Carrier
projection".
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.graphs.support import projection
from repro.index.tctree import build_tc_tree

from benchmarks.conftest import write_report

ROUNDS = 2
MAX_LENGTH = 2


def make_projection_network(nodes: int = 1000, m: int = 18, p: float = 0.8,
                            seed: int = 7, num_items: int = 14):
    """Dense mid-coverage network: items whose carriers span 20–60% of a
    powerlaw graph — child decompositions dominate. Full-size defaults
    give 14 items over 17.7k edges; fleet smoke runs scale down."""
    from repro.datasets.synthetic import generate_synthetic_network
    from repro.graphs.generators import powerlaw_cluster_graph

    graph = powerlaw_cluster_graph(nodes, m, p, seed=seed)
    return generate_synthetic_network(
        num_items=num_items,
        num_seeds=3,
        mutation_rate=0.5,
        max_transactions=18,
        max_transaction_length=3,
        graph=graph,
        seed=seed,
    )


@pytest.fixture(scope="module")
def projection_network():
    return make_projection_network()


def run(config):
    """Fleet entry point (area: core): interleaved A/B of the carrier
    projection fast path against the re-enumeration oracle, with the
    bit-identical-tree parity assertion of the pytest case."""
    reps = int(config.get("reps", ROUNDS))
    max_length = int(config.get("max_length", MAX_LENGTH))
    net = {"nodes": 1000, "m": 18, "p": 0.8, "seed": 7, "num_items": 14,
           **config.get("network", {})}
    network = make_projection_network(**net)
    times: dict[bool, list[float]] = {False: [], True: []}
    trees: dict[bool, object] = {}
    for _ in range(reps):
        for enabled in (False, True):  # interleaved A/B rounds
            with projection(enabled):
                start = time.perf_counter()
                trees[enabled] = build_tc_tree(network, max_length=max_length)
                times[enabled].append(time.perf_counter() - start)
    assert_trees_bit_identical(trees[False], trees[True])
    oracle = statistics.median(times[False])
    projected = statistics.median(times[True])
    return {
        "medians": {
            "oracle_build_s": oracle,
            "projected_build_s": projected,
        },
        "reps": reps,
        "meta": {
            "speedup": round(oracle / projected, 3),
            "nodes": trees[True].num_nodes,
            "network_edges": network.num_edges,
        },
    }


def assert_trees_bit_identical(expected, actual):
    assert expected.patterns() == actual.patterns()
    for pattern in expected.patterns():
        a = expected.find_node(pattern).decomposition
        b = actual.find_node(pattern).decomposition
        assert a.thresholds() == b.thresholds()
        assert a.frequencies == b.frequencies
        assert [
            sorted(level.removed_edges) for level in a.levels
        ] == [sorted(level.removed_edges) for level in b.levels]


def test_projection_speedup_and_parity(projection_network, report_dir):
    times: dict[bool, list[float]] = {False: [], True: []}
    trees: dict[bool, object] = {}
    for _ in range(ROUNDS):
        for enabled in (False, True):  # interleaved A/B rounds
            with projection(enabled):
                start = time.perf_counter()
                trees[enabled] = build_tc_tree(
                    projection_network, max_length=MAX_LENGTH
                )
                times[enabled].append(time.perf_counter() - start)

    assert_trees_bit_identical(trees[False], trees[True])

    oracle = statistics.median(times[False])
    projected = statistics.median(times[True])
    lines = [
        "carrier-projection TC-Tree build, dense mid-coverage network "
        "(medians, interleaved)",
        f"  re-enumeration oracle: {oracle:.3f}s",
        f"  projection enabled:    {projected:.3f}s "
        f"(x{oracle / projected:.2f} vs oracle)",
        f"  nodes={trees[True].num_nodes}  "
        f"edges={projection_network.num_edges}",
        "  (vs PR 3 baseline measured offline: 8.08s -> 5.02s, x1.61)",
    ]
    report = "\n".join(lines)
    print(report)
    write_report(report_dir, "bench_carrier_projection", report)


def test_projected_build(benchmark, projection_network):
    """The tracked unit for this file's JSON artifact: the dense build
    with the projection fast path on (the production default)."""
    tree = benchmark.pedantic(
        build_tc_tree,
        args=(projection_network,),
        kwargs={"max_length": MAX_LENGTH},
        rounds=2,
        iterations=1,
    )
    assert tree.num_nodes == 105
