"""Attributed community search: in-memory tree vs the snapshot engine.

ATC-style search (:func:`repro.search.attributed.attributed_community_search`)
runs against any source answering the query protocol. The tree path
filters a fresh ``query_tc_tree`` traversal; the engine path rides the
serving tier's snapshot prune-without-decode and LRU carrier cache, so
repeated searches against a live :class:`IndexedWarehouse` skip decoding
untouched subtrees entirely. This benchmark runs a search mix on both
sources, asserts the ranked answers are bit-identical (members,
coverage, strength, frequencies — ranking ties included), and reports
per-source medians for the fleet trajectory.
"""

from __future__ import annotations

import statistics
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import REPORTS_DIR, make_dense_network, write_report
from repro.bench.reporting import format_table
from repro.index.query import query_tc_tree
from repro.index.warehouse import ThemeCommunityWarehouse
from repro.search.attributed import attributed_community_search
from repro.serve.engine import IndexedWarehouse


def _search_mix(tree) -> list[tuple[tuple[int, ...], tuple[int, ...], float]]:
    """(query vertices, query attributes, alpha) triples off one tree.

    Query vertices come from the largest indexed community so most
    searches hit; attributes sweep the full item universe and a narrow
    prefix; one query raises alpha to exercise cohesion filtering.
    """
    answer = query_tc_tree(tree, pattern=None, alpha=0.0)
    largest: frozenset[int] = frozenset()
    for truss in answer.trusses:
        for community in truss.communities():
            if len(community) > len(largest):
                largest = frozenset(community)
    members = sorted(largest)
    pair = tuple(members[:2])
    items = tuple(sorted({item for p in tree.patterns() for item in p}))
    high = tree.max_alpha()
    mix = [
        ((members[0],), items, 0.0),
        (pair, items, 0.0),
        ((members[0],), items[:2], 0.0),
        (pair, items, 0.5 * high),
    ]
    return mix


def measure_attributed_search(
    network, work_dir: Path, reps: int = 3
) -> dict[str, object]:
    """Tree-path vs engine-path medians over one search mix."""
    warehouse = ThemeCommunityWarehouse.build(network)
    snap_path = Path(work_dir) / "bench.tcsnap"
    warehouse.save_snapshot(snap_path)
    tree = warehouse.tree
    mix = _search_mix(tree)

    tree_samples: list[float] = []
    engine_samples: list[float] = []
    matches = 0
    with IndexedWarehouse.open(snap_path) as engine:
        for _ in range(reps):
            start = time.perf_counter()
            tree_answers = [
                attributed_community_search(tree, v, a, alpha=alpha)
                for v, a, alpha in mix
            ]
            tree_samples.append(time.perf_counter() - start)

            start = time.perf_counter()
            engine_answers = [
                attributed_community_search(engine, v, a, alpha=alpha)
                for v, a, alpha in mix
            ]
            engine_samples.append(time.perf_counter() - start)

            # Parity guard: the engine path answers bit-identically,
            # ranking ties included (AttributedMatch compares community
            # membership, frequencies, coverage, and strength).
            assert engine_answers == tree_answers
            matches = sum(len(answers) for answers in tree_answers)

    tree_s = statistics.median(tree_samples)
    engine_s = statistics.median(engine_samples)
    return {
        "queries": len(mix),
        "matches": matches,
        "indexed_trusses": len(tree.patterns()),
        "tree_s": tree_s,
        "engine_s": engine_s,
        "speedup": tree_s / engine_s if engine_s else float("inf"),
    }


def _write_search_report(report_dir, metrics: dict[str, object]) -> None:
    rows = [
        {
            "queries": metrics["queries"],
            "matches": metrics["matches"],
            "indexed_trusses": metrics["indexed_trusses"],
            "tree_ms": round(metrics["tree_s"] * 1e3, 2),
            "engine_ms": round(metrics["engine_s"] * 1e3, 2),
            "speedup": round(metrics["speedup"], 2),
        }
    ]
    write_report(
        report_dir,
        "attributed_search",
        format_table(
            rows, title="Attributed search: snapshot engine vs in-memory tree"
        ),
    )


def run(config):
    """Fleet entry point (area: search): attributed search medians on
    the dense network, tree path vs engine path, parity asserted."""
    reps = int(config.get("reps", 3))
    network = make_dense_network(**config.get("network", {}))
    with tempfile.TemporaryDirectory(prefix="bench-search-") as tmp:
        metrics = measure_attributed_search(network, Path(tmp), reps=reps)
    _write_search_report(REPORTS_DIR, metrics)
    return {
        "medians": {
            "tree_s": metrics["tree_s"],
            "engine_s": metrics["engine_s"],
        },
        "reps": reps,
        "meta": {
            "queries": metrics["queries"],
            "matches": metrics["matches"],
            "indexed_trusses": metrics["indexed_trusses"],
            "speedup": round(metrics["speedup"], 2),
        },
    }


def test_attributed_search(benchmark, report_dir, tmp_path, dense_network):
    metrics = measure_attributed_search(dense_network, tmp_path, reps=2)
    _write_search_report(report_dir, metrics)

    # Searches anchored at an indexed community must find something.
    assert metrics["matches"] > 0

    warehouse = ThemeCommunityWarehouse.build(dense_network)
    snap_path = tmp_path / "bench-warm.tcsnap"
    warehouse.save_snapshot(snap_path)
    mix = _search_mix(warehouse.tree)
    with IndexedWarehouse.open(snap_path) as engine:
        benchmark(
            lambda: [
                attributed_community_search(engine, v, a, alpha=alpha)
                for v, a, alpha in mix
            ]
        )
