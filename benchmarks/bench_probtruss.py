"""Probabilistic (k, γ)-truss: CSR peeling engine vs the legacy worklist.

The (k, γ)-truss (Huang et al., 2016; related work §2.1) peels edges
whose qualification probability ``Pr[e] × Pr[support ≥ k-2 | e]`` drops
below γ. The legacy path recomputes the Poisson-binomial tail over
adjacency-set intersections per worklist pop; the registered CSR engine
(:func:`repro.graphs.support.prob_truss_edges`) pre-filters through the
deterministic k-truss peel, then runs the DP only on the surviving core
over the cached triangle index.

The workload is the analytics pattern the cached index exists for: a
sweep of (k, γ) settings over one graph. The legacy arm re-intersects
adjacency sets per setting; the CSR arm converts once and shares the
triangle index across the sweep. Every setting asserts both backends
return the same truss — the parity the hypothesis suite checks on small
graphs, here at benchmark scale.

Edge probabilities come from the dyadic grid {0.25, 0.5, 0.75, 1.0}, so
the tail DP is exact in float64 and the parity assert is order-proof.
"""

from __future__ import annotations

import random
import statistics
import time

from benchmarks.conftest import REPORTS_DIR, write_report
from repro.bench.reporting import format_table
from repro.graphs.csr import as_csr
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import edge_key
from repro.graphs.probtruss import probabilistic_k_truss

#: The (k, γ) sweep: k spans shallow to deep cores; γ spans permissive
#: to strict qualification.
SETTINGS = ((3, 0.05), (4, 0.1), (4, 0.3), (5, 0.1))

#: Exact-in-float64 probability grid (see module docstring).
PROBABILITY_GRID = (0.25, 0.5, 0.75, 1.0)


def make_probabilistic_graph(
    nodes: int = 900, m: int = 6, p: float = 0.6, seed: int = 11
):
    """A clustered graph plus seeded dyadic edge probabilities."""
    graph = powerlaw_cluster_graph(nodes, m, p, seed=seed)
    rng = random.Random(seed)
    probabilities = {
        edge_key(u, v): rng.choice(PROBABILITY_GRID)
        for u, v in graph.iter_edges()
    }
    return graph, probabilities


def measure_probtruss(
    graph, probabilities, settings=SETTINGS, reps: int = 3
) -> dict[str, object]:
    """Interleaved A/B of one (k, γ) sweep per backend, with parity.

    The CSR arm converts inside the timed region — the conversion plus
    triangle index are exactly the fixed costs the sweep amortizes.
    """
    legacy_samples: list[float] = []
    csr_samples: list[float] = []
    truss_edges: list[int] = []
    for _ in range(reps):
        start = time.perf_counter()
        legacy = [
            probabilistic_k_truss(
                graph, probabilities, k, gamma, engine="legacy"
            )
            for k, gamma in settings
        ]
        legacy_samples.append(time.perf_counter() - start)

        start = time.perf_counter()
        csr_graph = as_csr(graph)
        fast = [
            probabilistic_k_truss(
                csr_graph, probabilities, k, gamma, engine="csr"
            )
            for k, gamma in settings
        ]
        csr_samples.append(time.perf_counter() - start)

        # Parity guard: both backends peel to the same truss at every
        # setting of the sweep.
        for slow, quick in zip(legacy, fast):
            assert sorted(quick.iter_edges()) == sorted(slow.iter_edges())
            assert sorted(quick.vertices()) == sorted(slow.vertices())
        truss_edges = [truss.num_edges for truss in legacy]

    legacy_s = statistics.median(legacy_samples)
    csr_s = statistics.median(csr_samples)
    return {
        "settings": list(settings),
        "edges": graph.num_edges,
        "truss_edges": truss_edges,
        "legacy_s": legacy_s,
        "csr_s": csr_s,
        "speedup": legacy_s / csr_s if csr_s else float("inf"),
    }


def _write_probtruss_report(report_dir, metrics: dict[str, object]) -> None:
    rows = [
        {
            "settings": "k,g=" + " ".join(
                f"{k}:{gamma:g}" for k, gamma in metrics["settings"]
            ),
            "edges": metrics["edges"],
            "truss_edges": max(metrics["truss_edges"], default=0),
            "legacy_ms": round(metrics["legacy_s"] * 1e3, 2),
            "csr_ms": round(metrics["csr_s"] * 1e3, 2),
            "speedup": round(metrics["speedup"], 2),
        }
    ]
    write_report(
        report_dir,
        "probtruss",
        format_table(
            rows,
            title="(k, gamma)-truss sweep: CSR engine vs legacy worklist",
        ),
    )


def run(config):
    """Fleet entry point (area: search): legacy vs CSR medians for one
    (k, γ) sweep on a clustered probabilistic graph, parity asserted."""
    reps = int(config.get("reps", 3))
    settings = [tuple(pair) for pair in config.get("settings", SETTINGS)]
    graph, probabilities = make_probabilistic_graph(
        **config.get("graph", {})
    )
    metrics = measure_probtruss(
        graph, probabilities, settings=settings, reps=reps
    )
    _write_probtruss_report(REPORTS_DIR, metrics)
    return {
        "medians": {
            "legacy_s": metrics["legacy_s"],
            "csr_s": metrics["csr_s"],
        },
        "reps": reps,
        "meta": {
            "edges": metrics["edges"],
            "settings": len(settings),
            "truss_edges": metrics["truss_edges"],
            "speedup": round(metrics["speedup"], 2),
        },
    }


def test_probabilistic_truss(benchmark, report_dir):
    graph, probabilities = make_probabilistic_graph(nodes=400, m=5)
    metrics = measure_probtruss(graph, probabilities, reps=2)
    _write_probtruss_report(report_dir, metrics)

    # The peel must keep a non-trivial core for the timing to mean much.
    assert max(metrics["truss_edges"]) > 0

    csr_graph = as_csr(graph)
    benchmark(
        lambda: [
            probabilistic_k_truss(
                csr_graph, probabilities, k, gamma, engine="csr"
            )
            for k, gamma in SETTINGS
        ]
    )
