"""Table 4 / Figure 6 — the co-author case study, as a checked benchmark.

The paper's case study makes three qualitative claims on AMINER:

1. theme communities are groups of collaborators with multi-keyword
   research themes (Table 4's keyword sets);
2. communities with different themes overlap arbitrarily, and prolific
   authors belong to many of them (Figure 6);
3. narrowing a theme (adding a keyword) shrinks its community
   (Figures 6(a) → 6(b), an instance of Theorem 5.1).

This benchmark builds the AMINER surrogate's TC-Tree and asserts all
three, writing a Table-4-style report.
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.datasets.coauthor import generate_coauthor_network
from repro.index.warehouse import ThemeCommunityWarehouse
from benchmarks.conftest import write_report


def test_case_study_claims(benchmark, report_dir):
    network = generate_coauthor_network(
        num_authors=100,
        num_topics=6,
        keywords_per_topic=4,
        num_keywords=50,
        authors_per_topic=25,
        num_papers=350,
        seed=7,
    )

    warehouse = benchmark.pedantic(
        ThemeCommunityWarehouse.build,
        args=(network,),
        kwargs={"max_length": 3},
        rounds=1,
        iterations=1,
    )
    communities = warehouse.communities(alpha=0.25, min_size=4)

    # Claim 1: multi-keyword themes exist.
    themed = [c for c in communities if len(c.pattern) >= 2]
    assert themed, "no multi-keyword theme communities found"

    # Claim 2: different-theme overlap; some author spans many themes.
    author_themes: dict[int, set] = {}
    for community in communities:
        for vertex in community.members:
            author_themes.setdefault(vertex, set()).add(community.pattern)
    max_span = max(len(themes) for themes in author_themes.values())
    assert max_span >= 3, "no author spans several themes"

    # Claim 3: Theorem 5.1 observed — for some indexed 2-pattern, its
    # truss is strictly inside each parent's truss.
    shrink_example = None
    for node in warehouse.tree.iter_nodes():
        if len(node.pattern) != 2:
            continue
        child = node.decomposition.truss_at(0.0)
        left = warehouse.tree.find_node(node.pattern[:1])
        parent = left.decomposition.truss_at(0.0)
        if 0 < child.num_edges < parent.num_edges:
            shrink_example = (
                node.pattern, child.num_edges, parent.num_edges
            )
            break
    assert shrink_example is not None

    rows = [
        {
            "theme": ",".join(
                str(x) for x in c.theme_labels(network)
            ),
            "authors": c.size,
        }
        for c in themed[:6]
    ]
    rows.append(
        {
            "theme": f"(shrink witness {shrink_example[0]})",
            "authors": f"{shrink_example[1]} < {shrink_example[2]} edges",
        }
    )
    write_report(
        report_dir,
        "case_study",
        format_table(
            rows, title="Table 4 / Figure 6 — case-study claims (surrogate)"
        ),
    )
