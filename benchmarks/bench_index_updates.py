"""Ablation — incremental TC-Tree maintenance vs full rebuild.

The warehouse is built once and queried many times; when vertex databases
change, rebuilding everything discards all unaffected work. This
benchmark measures the incremental path of
:mod:`repro.index.updates` against a from-scratch rebuild after a
single-vertex update, and asserts the two trees are identical.
"""

from __future__ import annotations

import copy
import time

from repro.bench.experiments import make_bk
from repro.bench.reporting import format_table
from repro.index.tctree import build_tc_tree
from repro.index.updates import update_vertex_database
from benchmarks.conftest import write_report


def test_incremental_update_vs_rebuild(benchmark, report_dir):
    base_network = make_bk("tiny")
    tree = build_tc_tree(base_network, max_length=3)
    vertex = sorted(base_network.databases)[0]
    new_transactions = [[0, 1], [0]]

    def incremental():
        network = copy.deepcopy(base_network)
        return network, update_vertex_database(
            network, tree, vertex, copy.deepcopy(new_transactions),
            max_length=3,
        )

    network, updated = benchmark.pedantic(
        incremental, rounds=1, iterations=1
    )

    start = time.perf_counter()
    scratch = build_tc_tree(network, max_length=3)
    scratch_seconds = time.perf_counter() - start

    assert updated.patterns() == scratch.patterns()
    for pattern in scratch.patterns():
        a = updated.find_node(pattern).decomposition
        b = scratch.find_node(pattern).decomposition
        assert sorted(a.edges_at(0.0)) == sorted(b.edges_at(0.0))

    reused = sum(
        1
        for node in updated.iter_nodes()
        if tree.find_node(node.pattern) is not None
        and node.decomposition is tree.find_node(node.pattern).decomposition
    )
    rows = [
        {
            "path": "incremental",
            "nodes": updated.num_nodes,
            "reused_decompositions": reused,
            "scratch_seconds": round(scratch_seconds, 4),
        }
    ]
    write_report(
        report_dir,
        "index_updates",
        format_table(rows, title="Incremental TC-Tree maintenance (BK tiny)"),
    )
    assert reused > 0  # the point of the incremental path
