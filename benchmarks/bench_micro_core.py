"""Micro-benchmarks of the core primitives.

Not a paper figure — these isolate the units the figures are built from
(MPTD peeling, truss decomposition, theme-network induction, cohesion
table) so performance regressions can be localized.
"""

from __future__ import annotations

import pytest

from repro.core.cohesion import edge_cohesion_table
from repro.core.mptd import maximal_pattern_truss
from repro.graphs.generators import powerlaw_cluster_graph
from repro.index.decomposition import decompose_network_pattern
from repro.network.theme import induce_theme_network


@pytest.fixture(scope="module")
def dense_graph():
    return powerlaw_cluster_graph(300, 4, 0.7, seed=1)


@pytest.fixture(scope="module")
def unit_frequencies(dense_graph):
    return {v: 1.0 for v in dense_graph}


def test_micro_cohesion_table(benchmark, dense_graph, unit_frequencies):
    table = benchmark(edge_cohesion_table, dense_graph, unit_frequencies)
    assert len(table) == dense_graph.num_edges


def test_micro_mptd_peel(benchmark, dense_graph, unit_frequencies):
    truss, _ = benchmark(
        maximal_pattern_truss, dense_graph, unit_frequencies, 1.0
    )
    assert truss.num_edges > 0


def test_micro_mptd_full_peel(benchmark, dense_graph, unit_frequencies):
    """Worst case: α high enough to remove every edge."""
    truss, _ = benchmark(
        maximal_pattern_truss, dense_graph, unit_frequencies, 1e9
    )
    assert truss.num_edges == 0


def test_micro_theme_induction(benchmark, bk_tiny):
    item = bk_tiny.item_universe()[0]
    graph, freqs = benchmark(induce_theme_network, bk_tiny, (item,))
    assert graph.num_vertices == len(freqs)


def test_micro_decomposition(benchmark, bk_tiny):
    items = bk_tiny.item_universe()

    def decompose_all():
        return [
            decompose_network_pattern(bk_tiny, (item,)) for item in items
        ]

    decompositions = benchmark(decompose_all)
    assert any(not d.is_empty() for d in decompositions)
