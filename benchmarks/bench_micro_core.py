"""Micro-benchmarks of the core primitives.

Not a paper figure — these isolate the units the figures are built from
(MPTD peeling, truss decomposition, theme-network induction, cohesion
table, TC-Tree build) so performance regressions can be localized.

The truss-decomposition and dense-decomposition/TC-Tree cases are the
regression guards for the CSR fast path (``repro/graphs/csr.py`` +
``repro/graphs/support.py``): the dict-of-sets baselines rescan every
edge per peeling level, which the CSR engine's cached triangle index and
lazy heap avoid. CI runs this file with ``--benchmark-json`` and uploads
the result as an artifact, so the perf trajectory is tracked per commit.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import make_bk
from repro.bench.fleet import median_seconds
from repro.core.cohesion import edge_cohesion_table
from repro.core.mptd import maximal_pattern_truss
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.ktruss import truss_numbers
from repro.index.decomposition import decompose_network_pattern
from repro.index.tctree import build_tc_tree
from repro.network.theme import induce_theme_network


def run(config):
    """Fleet entry point (area: core): medians of the core primitives.

    The units mirror the pytest-benchmark cases below — cohesion table,
    truss decomposition, MPTD peel on a clustered graph, plus the
    TC-Tree build on the BK surrogate — one comparable record instead of
    five pytest-benchmark JSON files.
    """
    reps = int(config.get("reps", 3))
    g = {"nodes": 300, "m": 4, "p": 0.7, "seed": 1, **config.get("graph", {})}
    graph = powerlaw_cluster_graph(g["nodes"], g["m"], g["p"], seed=g["seed"])
    frequencies = {v: 1.0 for v in graph}
    scale = str(config.get("scale", "tiny"))
    network = make_bk(scale)
    medians = {
        "cohesion_table_s": median_seconds(
            lambda: edge_cohesion_table(graph, frequencies), reps
        ),
        "truss_decomposition_s": median_seconds(
            lambda: truss_numbers(graph), reps
        ),
        "mptd_peel_s": median_seconds(
            lambda: maximal_pattern_truss(graph, frequencies, 1.0), reps
        ),
        "tctree_build_s": median_seconds(lambda: build_tc_tree(network), reps),
    }
    return {
        "medians": medians,
        "reps": reps,
        "meta": {"graph_edges": graph.num_edges, "bk_scale": scale},
    }


@pytest.fixture(scope="module")
def dense_graph():
    return powerlaw_cluster_graph(300, 4, 0.7, seed=1)


@pytest.fixture(scope="module")
def unit_frequencies(dense_graph):
    return {v: 1.0 for v in dense_graph}


def test_micro_cohesion_table(benchmark, dense_graph, unit_frequencies):
    table = benchmark(edge_cohesion_table, dense_graph, unit_frequencies)
    assert len(table) == dense_graph.num_edges


def test_micro_mptd_peel(benchmark, dense_graph, unit_frequencies):
    truss, _ = benchmark(
        maximal_pattern_truss, dense_graph, unit_frequencies, 1.0
    )
    assert truss.num_edges > 0


def test_micro_mptd_full_peel(benchmark, dense_graph, unit_frequencies):
    """Worst case: α high enough to remove every edge."""
    truss, _ = benchmark(
        maximal_pattern_truss, dense_graph, unit_frequencies, 1e9
    )
    assert truss.num_edges == 0


def test_micro_truss_decomposition(benchmark, dense_graph):
    """Classic truss decomposition — the headline CSR bucket-queue win.

    The legacy path re-scans the support dict for its minimum on every
    edge removal (O(m²)); the CSR engine is O(m + #triangles).
    """
    numbers = benchmark(truss_numbers, dense_graph)
    assert len(numbers) == dense_graph.num_edges
    assert max(numbers.values()) >= 3


def test_micro_theme_induction(benchmark, bk_tiny):
    item = bk_tiny.item_universe()[0]
    graph, freqs = benchmark(induce_theme_network, bk_tiny, (item,))
    assert graph.num_vertices == len(freqs)


def test_micro_decomposition(benchmark, bk_tiny):
    items = bk_tiny.item_universe()

    def decompose_all():
        return [
            decompose_network_pattern(bk_tiny, (item,)) for item in items
        ]

    decompositions = benchmark(decompose_all)
    assert any(not d.is_empty() for d in decompositions)


def test_micro_mpt_decomposition_dense(benchmark, dense_network):
    """Full maximal-pattern-truss decomposition of one dense theme."""
    item = dense_network.item_universe()[0]
    decomposition = benchmark(
        decompose_network_pattern, dense_network, (item,)
    )
    assert decomposition.num_edges > 1000
    assert len(decomposition.levels) > 100


def test_micro_tctree_build(benchmark, bk_tiny):
    """TC-Tree build on the small-theme surrogate (legacy-path regime)."""
    tree = benchmark(build_tc_tree, bk_tiny)
    assert tree.num_nodes > 0


def test_micro_tctree_build_dense(benchmark, dense_network):
    """TC-Tree build in the dense regime the CSR engine targets."""
    tree = benchmark.pedantic(
        build_tc_tree,
        args=(dense_network,),
        kwargs={"max_length": 2},
        rounds=3,
        iterations=1,
    )
    assert tree.num_nodes == 10


def test_micro_tctree_build_dense_parallel(benchmark, dense_network):
    """Process-parallel dense build (2 workers) — exercises the pool,
    the pickle protocol, and the subtree fan-out end to end. Wall-clock
    vs the serial case above depends on available cores; see
    bench_parallel_build.py for the dedicated A/B comparison."""
    tree = benchmark.pedantic(
        build_tc_tree,
        args=(dense_network,),
        kwargs={"max_length": 2, "workers": 2},
        rounds=3,
        iterations=1,
    )
    assert tree.num_nodes == 10
