"""Ablation — answering α-queries from the index vs re-mining.

The motivation for Section 6: "when a user inputs a new cohesion threshold
α, TCS, TCFA and TCFI have to recompute from scratch". This benchmark
sweeps α and measures QBA on a built TC-Tree against a fresh TCFI run,
asserting identical answers and reporting the speedup per α.
"""

from __future__ import annotations

import time

from repro.bench.experiments import make_bk
from repro.bench.reporting import format_table
from repro.core.tcfi import tcfi
from repro.index.query import query_by_alpha
from repro.index.tctree import build_tc_tree
from benchmarks.conftest import write_report

ALPHAS = (0.0, 0.2, 0.5, 1.0)


def test_index_query_vs_remine(benchmark, report_dir):
    network = make_bk("tiny")
    tree = build_tc_tree(network, max_length=3)

    rows = []
    for alpha in ALPHAS:
        start = time.perf_counter()
        answer = query_by_alpha(tree, alpha)
        query_s = time.perf_counter() - start

        start = time.perf_counter()
        mined = tcfi(network, alpha, max_length=3)
        mine_s = time.perf_counter() - start

        # The index must answer exactly what mining answers.
        assert set(answer.patterns()) == set(mined.patterns())
        for truss in answer.trusses:
            assert set(truss.graph.iter_edges()) == mined[
                truss.pattern
            ].edges()

        rows.append(
            {
                "alpha": alpha,
                "query_s": round(query_s, 6),
                "remine_s": round(mine_s, 6),
                "speedup": round(mine_s / max(query_s, 1e-9), 1),
                "trusses": answer.retrieved_nodes,
            }
        )
    write_report(
        report_dir,
        "ablation_index",
        format_table(
            rows, title="Index query vs re-mining per alpha (BK tiny)"
        ),
    )
    # The warehouse must beat re-mining at every α (its whole reason to
    # exist); at the paper's scale the gap is orders of magnitude.
    assert all(row["speedup"] > 1.0 for row in rows)

    # pytest-benchmark unit: the full QBA at α = 0.
    benchmark(query_by_alpha, tree, 0.0)
