"""Process-parallel TC-Tree build: workers scaling A/B comparison.

Not a paper figure — this is the regression guard for
``repro/index/parallel.py``. It builds the dense TC-Tree benchmark
network serially and with 2/4 process workers in *interleaved* rounds
(so drift hits every variant equally), reports the medians, and asserts
the parallel trees are identical to the serial oracle.

Interpretation note: the speedup ceiling is the machine's core count.
On a single-core container the process path can only measure its own
overhead (fork + result pickling); the point of running it in CI is to
exercise the pool, the pickle protocol, and the adaptive chunking on
every PR, with the JSON artifact tracking the overhead trend.
"""

from __future__ import annotations

import statistics
import time

from repro.index.tctree import build_tc_tree

from benchmarks.conftest import make_dense_network, write_report

ROUNDS = 3
WORKER_VARIANTS = (1, 2, 4)


def run(config):
    """Fleet entry point (area: parallel): serial vs process-pool build
    medians on the dense network, interleaved rounds, with the
    identical-tree parity assertion of the pytest case."""
    reps = int(config.get("reps", ROUNDS))
    variants = tuple(int(w) for w in config.get("workers", WORKER_VARIANTS))
    max_length = int(config.get("max_length", 2))
    network = make_dense_network(**config.get("network", {}))
    times: dict[int, list[float]] = {w: [] for w in variants}
    trees: dict[int, object] = {}
    for _ in range(reps):
        for workers in variants:  # interleaved A/B rounds
            start = time.perf_counter()
            trees[workers] = build_tc_tree(
                network, max_length=max_length, workers=workers
            )
            times[workers].append(time.perf_counter() - start)
    serial = trees[variants[0]]
    for workers in variants[1:]:
        assert trees[workers].patterns() == serial.patterns()
    medians = {
        f"workers{w}_build_s": statistics.median(times[w]) for w in variants
    }
    base = medians[f"workers{variants[0]}_build_s"]
    return {
        "medians": medians,
        "reps": reps,
        "meta": {
            "network_edges": network.num_edges,
            "speedups": {
                str(w): round(base / medians[f"workers{w}_build_s"], 3)
                for w in variants
            },
        },
    }


def test_parallel_build_scaling(dense_network, report_dir):
    times: dict[int, list[float]] = {w: [] for w in WORKER_VARIANTS}
    trees: dict[int, object] = {}
    for _ in range(ROUNDS):
        for workers in WORKER_VARIANTS:  # interleaved A/B rounds
            start = time.perf_counter()
            trees[workers] = build_tc_tree(
                dense_network, max_length=2, workers=workers
            )
            times[workers].append(time.perf_counter() - start)

    serial = trees[1]
    lines = ["parallel TC-Tree build, dense network (medians, interleaved)"]
    for workers in WORKER_VARIANTS:
        median = statistics.median(times[workers])
        lines.append(
            f"  workers={workers}: {median:.3f}s "
            f"(x{statistics.median(times[1]) / median:.2f} vs serial)"
        )
        tree = trees[workers]
        assert tree.patterns() == serial.patterns()
        for pattern in serial.patterns():
            assert (
                tree.find_node(pattern).decomposition.thresholds()
                == serial.find_node(pattern).decomposition.thresholds()
            )
    report = "\n".join(lines)
    print(report)
    write_report(report_dir, "bench_parallel_build", report)


def test_parallel_build_workers4(benchmark, dense_network):
    """The tracked unit for this file's JSON artifact: the 4-worker pool
    (the 2-worker case lives in bench_micro_core alongside the serial
    one, so the two artifacts track distinct configurations)."""
    tree = benchmark.pedantic(
        build_tc_tree,
        args=(dense_network,),
        kwargs={"max_length": 2, "workers": 4},
        rounds=3,
        iterations=1,
    )
    assert tree.num_nodes == 10
