"""Figure 3 — effect of the cohesion threshold α and TCS pre-filter ε.

Paper panels (a,e,i): time cost of TCFI / TCFA / TCS(ε) vs α on BK, GW,
AMINER samples. Panels (b-d, f-h, j-l): NP / NV / NE vs α, showing that
TCFA = TCFI exactly while TCS loses trusses at small α.

The benchmark times the full sweep per dataset; correctness assertions
check the paper's qualitative claims on every run.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import experiment_fig3
from benchmarks.conftest import write_report

#: per-dataset sample sizes, scaled down from the paper's 10k/10k/5k edges
SAMPLE_EDGES = {"BK": 100, "GW": 100, "AMINER": 80}


@pytest.mark.parametrize("dataset", ["BK", "GW", "AMINER"])
def test_fig3_alpha_epsilon_sweep(benchmark, report_dir, dataset):
    rows, report = benchmark.pedantic(
        experiment_fig3,
        kwargs={
            "dataset": dataset,
            "scale": "tiny",
            "sample_edges": SAMPLE_EDGES[dataset],
            "max_length": 3,
        },
        rounds=1,
        iterations=1,
    )
    write_report(report_dir, f"fig3_{dataset}", report)

    by_key = {(r["run"], r["alpha"]): r for r in rows}
    alphas = sorted({r["alpha"] for r in rows})

    for alpha in alphas:
        tcfi_row = by_key[("tcfi", alpha)]
        tcfa_row = by_key[("tcfa", alpha)]
        # TCFA and TCFI produce the same exact results for all α (§7.1).
        assert tcfi_row["NP"] == tcfa_row["NP"]
        assert tcfi_row["NV"] == tcfa_row["NV"]
        assert tcfi_row["NE"] == tcfa_row["NE"]
        # TCS never finds more than the exact methods.
        for eps in (0.1, 0.2, 0.3):
            assert by_key[(f"tcs(eps={eps})", alpha)]["NP"] <= tcfi_row["NP"]

    # NP decreases monotonically in α (larger threshold, fewer trusses).
    np_series = [by_key[("tcfi", a)]["NP"] for a in alphas]
    assert np_series == sorted(np_series, reverse=True)

    # TCS at the smallest α must actually lose trusses for some ε — the
    # accuracy/efficiency trade-off of Section 4.2.
    exact_np = by_key[("tcfi", alphas[0])]["NP"]
    assert by_key[("tcs(eps=0.3)", alphas[0])]["NP"] < exact_np
