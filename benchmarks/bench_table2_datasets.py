"""Table 2 — statistics of the database networks.

Paper: BK/GW/AMINER/SYN sizes (vertices, edges, transactions, items).
Ours: the surrogate datasets at benchmark scale; the benchmark times the
statistics pass itself (a full scan of every vertex database).
"""

from __future__ import annotations

from repro.bench.experiments import experiment_table2
from benchmarks.conftest import write_report


def test_table2_dataset_statistics(benchmark, report_dir):
    rows, report = benchmark.pedantic(
        experiment_table2, args=("tiny",), rounds=1, iterations=1
    )
    write_report(report_dir, "table2", report)
    assert len(rows) == 4
    # Shape check mirroring the paper: every dataset is non-trivial and the
    # item universe is much smaller than total item occurrences.
    for row in rows:
        assert row["#Edges"] > 0
        assert row["#Items (total)"] > row["#Items (unique)"]
